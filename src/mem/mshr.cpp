#include "mem/mshr.hpp"

#include "util/error.hpp"

namespace lpm::mem {

MshrFile::MshrFile(std::uint32_t entries, std::uint32_t max_targets)
    : entries_(entries), max_targets_(max_targets), free_(entries) {
  util::require(entries >= 1, "MshrFile: need at least one entry");
  util::require(max_targets >= 1, "MshrFile: need at least one target per entry");
  for (auto& e : entries_) {
    e.targets.reserve(max_targets);
  }
}

std::optional<std::uint32_t> MshrFile::find(Addr block_addr) const {
  for (std::uint32_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].valid && entries_[i].block_addr == block_addr) {
      return i;
    }
  }
  return std::nullopt;
}

bool MshrFile::can_add_target(std::uint32_t idx) const {
  const auto& e = entries_.at(idx);
  return e.valid && e.targets.size() < max_targets_;
}

std::uint32_t MshrFile::allocate(Addr block_addr, const MshrTarget& target, Cycle now) {
  const std::uint32_t i = allocate_prefetch(block_addr, now, target.core);
  entries_[i].is_prefetch = false;
  entries_[i].targets.push_back(target);
  return i;
}

std::uint32_t MshrFile::allocate_prefetch(Addr block_addr, Cycle now, CoreId core) {
  util::require(can_allocate(), "MshrFile::allocate without free entry");
  util::require(!find(block_addr).has_value(),
                "MshrFile::allocate: duplicate entry for block");
  for (std::uint32_t i = 0; i < entries_.size(); ++i) {
    if (!entries_[i].valid) {
      entries_[i].valid = true;
      entries_[i].issued = false;
      entries_[i].is_prefetch = true;
      entries_[i].core = core;
      entries_[i].fill_id = kNoRequest;
      entries_[i].block_addr = block_addr;
      entries_[i].allocated = now;
      entries_[i].targets.clear();
      --free_;
      return i;
    }
  }
  throw util::LpmError("MshrFile::allocate: internal inconsistency");
}

void MshrFile::add_target(std::uint32_t idx, const MshrTarget& target) {
  util::require(can_add_target(idx), "MshrFile::add_target on full/invalid entry");
  entries_.at(idx).targets.push_back(target);
}

std::vector<MshrTarget> MshrFile::release(std::uint32_t idx) {
  std::vector<MshrTarget> out;
  release_into(idx, out);
  return out;
}

void MshrFile::release_into(std::uint32_t idx, std::vector<MshrTarget>& out) {
  auto& e = entries_.at(idx);
  util::require(e.valid, "MshrFile::release on invalid entry");
  out.clear();
  out.swap(e.targets);  // entry inherits out's old storage
  e.block_addr = 0;
  e.valid = false;
  e.issued = false;
  e.is_prefetch = false;
  e.core = kNoCore;
  e.fill_id = kNoRequest;
  e.allocated = 0;
  e.targets.reserve(max_targets_);
  ++free_;
}

MshrEntry& MshrFile::entry(std::uint32_t idx) { return entries_.at(idx); }
const MshrEntry& MshrFile::entry(std::uint32_t idx) const { return entries_.at(idx); }

std::uint32_t MshrFile::in_use_by(CoreId core) const {
  std::uint32_t n = 0;
  for (const auto& e : entries_) {
    if (e.valid && e.core == core) ++n;
  }
  return n;
}

std::uint32_t MshrFile::outstanding_targets() const {
  std::uint32_t n = 0;
  for (const auto& e : entries_) {
    if (e.valid) n += static_cast<std::uint32_t>(e.targets.size());
  }
  return n;
}

std::vector<std::uint32_t> MshrFile::valid_entries() const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].valid) out.push_back(i);
  }
  return out;
}

}  // namespace lpm::mem
