#include "mem/dram.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace lpm::mem {

namespace {
[[nodiscard]] bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

void DramConfig::validate() const {
  using util::require;
  require(banks >= 1 && is_pow2(banks), name, ": banks must be a power of two");
  require(is_pow2(row_bytes), name, ": row_bytes must be a power of two");
  require(is_pow2(interleave_bytes), name, ": interleave must be a power of two");
  require(row_bytes >= interleave_bytes, name, ": row must cover the interleave unit");
  require(t_burst >= 1, name, ": t_burst must be >= 1");
  require(queue_capacity >= 1, name, ": queue_capacity must be >= 1");
  require(max_issue_per_cycle >= 1, name, ": max_issue_per_cycle must be >= 1");
}

Dram::Dram(DramConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.validate();
  banks_.assign(cfg_.banks, Bank{});
  queue_.reserve(cfg_.queue_capacity);
}

std::uint32_t Dram::bank_of(Addr addr) const {
  return static_cast<std::uint32_t>((addr / cfg_.interleave_bytes) & (cfg_.banks - 1));
}

std::uint64_t Dram::row_of(Addr addr) const {
  // Rows are striped across banks: drop the interleave bits belonging to the
  // bank index, then divide by the row size.
  return addr / (cfg_.row_bytes * cfg_.banks);
}

bool Dram::try_access(const MemRequest& req) {
  if (queue_.size() >= cfg_.queue_capacity) {
    ++stats_.rejected_full;
    return false;
  }
  Pending p;
  p.req = req;
  p.accepted = accept_cycle_;
  queue_.push_back(p);
  if (req.reply_to != nullptr) {
    ++demand_in_queue_;
    if (probe_ != nullptr) {
      probe_->on_access(req.id, accept_cycle_, req.kind == AccessKind::kWrite);
    }
  }
  return true;
}

void Dram::sample_activity(Cycle cycle) {
  if (!queue_.empty()) ++stats_.busy_cycles;
  if (probe_ == nullptr) return;
  // Last level: all residency counts as hit activity (see class comment).
  // Fire-and-forget writes are bandwidth, not demand accesses; excluded by
  // demand_in_queue_, which tracks exactly the replied-to residents. A DRAM
  // probe never sees on_miss, so once one zero-demand cycle is delivered,
  // further idle samples are metric-neutral and can be skipped.
  if (demand_in_queue_ == 0 && probe_quiesced_) return;
  probe_->on_cycle_activity(cycle, demand_in_queue_);
  probe_quiesced_ = demand_in_queue_ == 0;
}

void Dram::tick(Cycle now) {
  if (now > 0) sample_activity(now - 1);
  accept_cycle_ = now;
  if (queue_.empty()) return;  // idle fast path: nothing to complete or issue

  complete_finished(now);
  issue_commands(now);
}

void Dram::issue_commands(Cycle now) {
  std::uint32_t issued = 0;
  // FR-FCFS with an age cap: row hits first (oldest row hit), then oldest
  // request - but a request that has waited past the starvation threshold
  // is served FCFS ahead of younger row hits.
  while (issued < cfg_.max_issue_per_cycle) {
    std::size_t pick = queue_.size();
    // Pass 0: starved ready request (oldest first).
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      const Pending& p = queue_[i];
      if (p.in_service) continue;
      if (now - p.accepted < cfg_.starvation_threshold) continue;
      if (banks_[bank_of(p.req.addr)].busy_until <= now) {
        pick = i;
        break;
      }
    }
    // Pass 1: oldest ready row hit.
    for (std::size_t i = 0; pick == queue_.size() && i < queue_.size(); ++i) {
      const Pending& p = queue_[i];
      if (p.in_service) continue;
      const Bank& b = banks_[bank_of(p.req.addr)];
      if (b.busy_until > now) continue;
      if (b.row_open && b.open_row == row_of(p.req.addr)) {
        pick = i;
      }
    }
    // Pass 2: oldest ready request of any kind.
    if (pick == queue_.size()) {
      for (std::size_t i = 0; i < queue_.size(); ++i) {
        const Pending& p = queue_[i];
        if (p.in_service) continue;
        if (banks_[bank_of(p.req.addr)].busy_until <= now) {
          pick = i;
          break;
        }
      }
    }
    if (pick == queue_.size()) break;  // nothing schedulable this cycle

    Pending& p = queue_[pick];
    Bank& b = banks_[bank_of(p.req.addr)];
    const std::uint64_t row = row_of(p.req.addr);
    std::uint32_t latency = 0;
    if (b.row_open && b.open_row == row) {
      latency = cfg_.t_cl + cfg_.t_burst;
      ++stats_.row_hits;
    } else if (!b.row_open) {
      latency = cfg_.t_rcd + cfg_.t_cl + cfg_.t_burst;
      ++stats_.row_misses;
    } else {
      latency = cfg_.t_rp + cfg_.t_rcd + cfg_.t_cl + cfg_.t_burst;
      ++stats_.row_conflicts;
    }
    b.row_open = true;
    b.open_row = row;
    b.busy_until = now + latency;
    p.in_service = true;
    p.done_at = now + latency + cfg_.frontend_latency;
    ++issued;
  }
}

void Dram::complete_finished(Cycle now) {
  for (std::size_t i = 0; i < queue_.size();) {
    Pending& p = queue_[i];
    if (p.in_service && p.done_at <= now) {
      if (p.req.kind == AccessKind::kRead) {
        ++stats_.reads;
        stats_.total_read_latency += now - p.accepted;
      } else {
        ++stats_.writes;
      }
      if (probe_ != nullptr && p.req.reply_to != nullptr) {
        probe_->on_hit(p.req.id, now);
      }
      if (p.req.reply_to != nullptr) {
        p.req.reply_to->on_response(
            MemResponse{p.req.id, p.req.core, p.req.addr, now});
        --demand_in_queue_;
      }
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

void Dram::finalize(Cycle end_cycle) { sample_activity(end_cycle); }

bool Dram::busy() const { return !queue_.empty(); }

}  // namespace lpm::mem
