// A memory level that satisfies every request after a fixed latency.
//
// Two uses: (1) as the "magic" L1 replacement when calibrating CPIexe (the
// processor's perfect-cache cycles-per-instruction, the denominator of every
// LPMR); (2) as a test double underneath a cache under unit test.
#pragma once

#include <deque>

#include "mem/request.hpp"

namespace lpm::mem {

class PerfectMemory final : public MemoryLevel {
 public:
  /// Every accepted request completes `latency` cycles later; up to
  /// `ports` requests accepted per cycle (0 = unlimited).
  explicit PerfectMemory(std::uint32_t latency, std::uint32_t ports = 0)
      : latency_(latency), ports_(ports) {}

  bool try_access(const MemRequest& req) override {
    if (ports_ != 0 && accepted_this_cycle_ >= ports_) return false;
    ++accepted_this_cycle_;
    ++accesses_;
    if (req.reply_to != nullptr) {
      in_flight_.push_back(Pending{req, now_ + latency_});
    }
    return true;
  }

  void tick(Cycle now) override {
    now_ = now;
    accepted_this_cycle_ = 0;
    while (!in_flight_.empty() && in_flight_.front().done_at <= now) {
      const Pending p = in_flight_.front();
      in_flight_.pop_front();
      p.req.reply_to->on_response(MemResponse{p.req.id, p.req.core, p.req.addr, now});
    }
  }

  void finalize(Cycle) override {}
  [[nodiscard]] bool busy() const override { return !in_flight_.empty(); }
  [[nodiscard]] std::uint64_t accesses() const { return accesses_; }

 private:
  struct Pending {
    MemRequest req;
    Cycle done_at;
  };
  std::uint32_t latency_;
  std::uint32_t ports_;
  Cycle now_ = 0;
  std::uint32_t accepted_this_cycle_ = 0;
  std::uint64_t accesses_ = 0;
  std::deque<Pending> in_flight_;
};

}  // namespace lpm::mem
