// Probe interface implemented by the C-AMAT analyzer (camat::Analyzer).
//
// The interface lives in mem so the cache does not depend on the analysis
// library; camat depends on mem. Events mirror the paper's Fig. 4 detectors:
// per-cycle hit activity feeds the HCD, miss begin/end events feed the MCD.
#pragma once

#include <cstdint>

#include "util/types.hpp"

namespace lpm::mem {

class AccessProbe {
 public:
  virtual ~AccessProbe() = default;

  /// Reports, exactly once per simulated cycle and in increasing cycle
  /// order, how many demand accesses were in their hit (lookup) phase during
  /// `cycle`. Misses outstanding during the cycle are tracked by the probe
  /// itself via on_miss/on_miss_done.
  virtual void on_cycle_activity(Cycle cycle, std::uint32_t hit_active) = 0;

  /// A demand access entered the level's lookup pipeline.
  virtual void on_access(RequestId id, Cycle start, bool is_write) = 0;

  /// Lookup resolved as a hit; the access is complete.
  virtual void on_hit(RequestId id, Cycle done) = 0;

  /// Lookup resolved as a miss; the access is outstanding from `start`.
  virtual void on_miss(RequestId id, Cycle start) = 0;

  /// The outstanding miss completed (data delivered) at `done`.
  virtual void on_miss_done(RequestId id, Cycle done) = 0;
};

}  // namespace lpm::mem
