#include "mem/replacement.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace lpm::mem {

const char* to_string(ReplacementPolicy p) {
  switch (p) {
    case ReplacementPolicy::kLru: return "lru";
    case ReplacementPolicy::kFifo: return "fifo";
    case ReplacementPolicy::kRandom: return "random";
    case ReplacementPolicy::kPlru: return "plru";
    case ReplacementPolicy::kSrrip: return "srrip";
  }
  return "?";
}

ReplacementPolicy replacement_from_string(const std::string& s) {
  if (s == "lru") return ReplacementPolicy::kLru;
  if (s == "fifo") return ReplacementPolicy::kFifo;
  if (s == "random") return ReplacementPolicy::kRandom;
  if (s == "plru") return ReplacementPolicy::kPlru;
  if (s == "srrip") return ReplacementPolicy::kSrrip;
  throw util::LpmError("unknown replacement policy: " + s);
}

ReplacementState::ReplacementState(ReplacementPolicy policy, std::uint32_t ways)
    : policy_(policy), ways_(ways) {
  util::require(ways >= 1, "ReplacementState: ways must be >= 1");
  last_use_.assign(ways, 0);
  fill_seq_.assign(ways, 0);
  if (policy_ == ReplacementPolicy::kPlru && plru_applicable()) {
    plru_bits_.assign(ways - 1, 0);
  }
  if (policy_ == ReplacementPolicy::kSrrip) {
    rrpv_.assign(ways, 3);  // empty ways look like distant re-reference
  }
}

bool ReplacementState::plru_applicable() const {
  return ways_ >= 2 && (ways_ & (ways_ - 1)) == 0;
}

void ReplacementState::touch(std::uint32_t way, std::uint64_t tick) {
  util::require(way < ways_, "ReplacementState::touch: bad way");
  last_use_[way] = tick;
  if (policy_ == ReplacementPolicy::kPlru && plru_applicable()) {
    plru_touch(way);
  }
  if (policy_ == ReplacementPolicy::kSrrip) {
    rrpv_[way] = 0;  // re-referenced: predict near reuse
  }
}

void ReplacementState::fill(std::uint32_t way, std::uint64_t tick) {
  util::require(way < ways_, "ReplacementState::fill: bad way");
  fill_seq_[way] = tick;
  touch(way, tick);
  if (policy_ == ReplacementPolicy::kSrrip) {
    rrpv_[way] = 2;  // inserted with long re-reference prediction: a line
                     // must prove reuse before it outranks resident ones
  }
}

void ReplacementState::plru_touch(std::uint32_t way) {
  // Walk root->leaf; set each node bit to point *away* from this way.
  std::uint32_t node = 0;
  std::uint32_t lo = 0;
  std::uint32_t hi = ways_;
  while (hi - lo > 1) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    const bool right = way >= mid;
    plru_bits_[node] = right ? 0 : 1;  // bit points to the cold side
    node = 2 * node + (right ? 2 : 1);
    if (right) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
}

std::uint32_t ReplacementState::plru_victim() const {
  std::uint32_t node = 0;
  std::uint32_t lo = 0;
  std::uint32_t hi = ways_;
  while (hi - lo > 1) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    // touch() stores 1 when the cold half is the right one.
    const bool right = plru_bits_[node] == 1;
    node = 2 * node + (right ? 2 : 1);
    if (right) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::uint32_t ReplacementState::srrip_victim() const {
  // Find a distant-re-reference way; age everyone until one appears.
  for (;;) {
    for (std::uint32_t w = 0; w < ways_; ++w) {
      if (rrpv_[w] >= 3) return w;
    }
    for (auto& r : rrpv_) ++r;
  }
}

std::uint32_t ReplacementState::victim(util::Rng& rng) const {
  switch (policy_) {
    case ReplacementPolicy::kRandom:
      return static_cast<std::uint32_t>(rng.next_below(ways_));
    case ReplacementPolicy::kFifo: {
      const auto it = std::min_element(fill_seq_.begin(), fill_seq_.end());
      return static_cast<std::uint32_t>(it - fill_seq_.begin());
    }
    case ReplacementPolicy::kSrrip:
      return srrip_victim();
    case ReplacementPolicy::kPlru:
      if (plru_applicable()) return plru_victim();
      [[fallthrough]];
    case ReplacementPolicy::kLru: {
      const auto it = std::min_element(last_use_.begin(), last_use_.end());
      return static_cast<std::uint32_t>(it - last_use_.begin());
    }
  }
  return 0;
}

}  // namespace lpm::mem
