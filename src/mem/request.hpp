// Request/response plumbing between memory-hierarchy levels.
#pragma once

#include <cstdint>

#include "util/types.hpp"

namespace lpm::mem {

enum class AccessKind : std::uint8_t {
  kRead,   ///< demand load or block fill
  kWrite,  ///< demand store or writeback
};

struct MemResponse {
  RequestId id = kNoRequest;
  CoreId core = kNoCore;
  Addr addr = 0;
  Cycle completed = 0;
};

/// Receiver of completions. Levels and cores implement this; a request
/// carries a non-owning pointer to where its response should be delivered
/// (nullptr for fire-and-forget traffic such as writebacks).
class ResponseSink {
 public:
  virtual ~ResponseSink() = default;
  virtual void on_response(const MemResponse& rsp) = 0;
};

struct MemRequest {
  RequestId id = kNoRequest;
  CoreId core = kNoCore;        ///< originating core (for attribution)
  Addr addr = 0;
  AccessKind kind = AccessKind::kRead;
  Cycle created = 0;
  ResponseSink* reply_to = nullptr;  ///< non-owning; nullptr = no reply
};

/// One level of the memory hierarchy as seen from above.
class MemoryLevel {
 public:
  virtual ~MemoryLevel() = default;

  /// Presents a request. Returns false when the level cannot accept it this
  /// cycle (port/bank/queue backpressure); the caller must retry later.
  virtual bool try_access(const MemRequest& req) = 0;

  /// Advances one cycle. Must be called for every cycle in increasing order;
  /// callers tick the hierarchy bottom-up (memory first).
  virtual void tick(Cycle now) = 0;

  /// Flushes per-cycle probe accounting for the final simulated cycle.
  virtual void finalize(Cycle end_cycle) = 0;

  /// True while any request is in flight inside this level.
  [[nodiscard]] virtual bool busy() const = 0;
};

}  // namespace lpm::mem
