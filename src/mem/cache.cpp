#include "mem/cache.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace lpm::mem {

namespace {
[[nodiscard]] bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Rebuilds `rb` with at least `want` capacity, preserving FIFO order.
/// Never shrinks (pools only ever need to grow on reconfiguration).
template <typename T>
void grow_ring(lpm::util::RingBuffer<T>& rb, std::size_t want) {
  if (rb.capacity() >= want) return;
  lpm::util::RingBuffer<T> grown(want);
  while (!rb.empty()) {
    grown.push(rb.front());
    rb.pop();
  }
  rb = std::move(grown);
}
}  // namespace

void CacheConfig::validate() const {
  using util::require;
  // >= 2 so block-aligned addresses always have a zero low bit, keeping the
  // all-ones invalid-tag sentinel unambiguous.
  require(is_pow2(block_bytes) && block_bytes >= 2,
          name, ": block_bytes must be a power of two >= 2");
  require(is_pow2(size_bytes), name, ": size_bytes must be a power of two");
  require(associativity >= 1, name, ": associativity must be >= 1");
  require(size_bytes >= static_cast<std::uint64_t>(block_bytes) * associativity,
          name, ": cache smaller than one set");
  require(size_bytes % (static_cast<std::uint64_t>(block_bytes) * associativity) == 0,
          name, ": size must be a multiple of block*assoc");
  require(is_pow2(num_sets()), name, ": number of sets must be a power of two");
  require(hit_latency >= 1, name, ": hit_latency must be >= 1");
  require(ports >= 1, name, ": ports must be >= 1");
  require(banks >= 1 && is_pow2(banks), name, ": banks must be a power of two");
  require(interleave_bytes >= block_bytes && is_pow2(interleave_bytes),
          name, ": interleave must be a power of two >= block size");
  require(mshr_entries >= 1, name, ": mshr_entries must be >= 1");
  require(mshr_targets >= 1, name, ": mshr_targets must be >= 1");
  require(writeback_capacity >= 1, name, ": writeback_capacity must be >= 1");
  require(num_cores >= 1, name, ": num_cores must be >= 1");
}

Cache::Cache(CacheConfig cfg, MemoryLevel* below, std::uint64_t id_space)
    : cfg_(std::move(cfg)),
      below_(below),
      mshr_(cfg_.mshr_entries, cfg_.mshr_targets),
      rng_(cfg_.seed),
      next_fill_id_(id_space << 40) {
  cfg_.validate();
  util::require(below_ != nullptr, cfg_.name, ": lower level must exist");
  line_tags_.assign(cfg_.num_sets() * cfg_.associativity, kInvalidTag);
  line_flags_.assign(cfg_.num_sets() * cfg_.associativity, 0);
  repl_.reserve(cfg_.num_sets());
  for (std::uint64_t s = 0; s < cfg_.num_sets(); ++s) {
    repl_.emplace_back(cfg_.replacement, cfg_.associativity);
  }
  bank_accepts_.assign(cfg_.banks, 0);
  stats_.core_accesses.assign(cfg_.num_cores, 0);
  stats_.core_misses.assign(cfg_.num_cores, 0);
  effective_prefetch_degree_ = cfg_.prefetch_degree;
  runtime_ports_ = cfg_.ports;
  runtime_per_bank_ = cfg_.per_bank_limit();
  runtime_mshr_limit_ = cfg_.mshr_entries;
  // Bound the replay queue: enough to absorb a burst, small enough that MSHR
  // saturation back-pressures the upper level instead of hiding in a queue.
  mshr_wait_cap_ = static_cast<std::size_t>(cfg_.mshr_entries) * 2 + 8;
  reserve_pools();
  release_scratch_.reserve(cfg_.mshr_targets);
}

void Cache::reserve_pools() {
  // Pipeline bound: at most ports accepts per cycle, each resident exactly
  // hit_latency cycles (lookups never stall in place).
  const std::size_t in_pipe =
      static_cast<std::size_t>(runtime_ports_) * cfg_.hit_latency;
  grow_ring(pipeline_, in_pipe);
  // Replay bound: admission stops demand once mshr_wait_.size() >=
  // mshr_wait_cap_, but every access already inside the lookup pipeline may
  // still miss into the queue after the gate closed.
  grow_ring(mshr_wait_, mshr_wait_cap_ + in_pipe);
  // A fill response / deferred install corresponds to a still-valid MSHR
  // entry, so both queues are bounded by the MSHR file size.
  grow_ring(fill_q_, cfg_.mshr_entries);
  grow_ring(deferred_fill_blocks_, cfg_.mshr_entries);
  // Prefetch candidates are capped at degree*8 (drop-oldest beyond that).
  grow_ring(prefetch_q_, std::max<std::size_t>(
                             1, static_cast<std::size_t>(cfg_.prefetch_degree) * 8));
}

std::uint64_t Cache::set_index(Addr addr) const {
  return (addr / cfg_.block_bytes) & (cfg_.num_sets() - 1);
}

std::uint32_t Cache::bank_of(Addr addr) const {
  return static_cast<std::uint32_t>((addr / cfg_.interleave_bytes) & (cfg_.banks - 1));
}

std::uint32_t Cache::find_way(Addr addr) const {
  const Addr blk = block_addr(addr);
  const Addr* base = &line_tags_[set_index(addr) * cfg_.associativity];
  for (std::uint32_t w = 0; w < cfg_.associativity; ++w) {
    if (base[w] == blk) return w;  // kInvalidTag never equals a block address
  }
  return kNoWay;
}

bool Cache::contains_block(Addr addr) const { return find_way(addr) != kNoWay; }

bool Cache::block_dirty(Addr addr) const {
  const std::uint32_t way = find_way(addr);
  if (way == kNoWay) return false;
  return (line_flags_[set_index(addr) * cfg_.associativity + way] & kLineDirty) != 0;
}

bool Cache::try_access(const MemRequest& req) {
  const Cycle now = accept_cycle_;
  // try_access may be called by upper components after this cache's tick for
  // the same cycle; accept_cycle_ tracks the cycle tick() last saw.
  const bool is_writeback = req.kind == AccessKind::kWrite && req.reply_to == nullptr;

  if (accepted_this_cycle_ >= runtime_ports_) {
    ++stats_.rejected_ports;
    return false;
  }
  const std::uint32_t bank = bank_of(req.addr);
  if (bank_accepts_[bank] >= runtime_per_bank_) {
    ++stats_.rejected_bank;
    return false;
  }
  if (!is_writeback && mshr_wait_.size() >= mshr_wait_cap_) {
    // Do not admit demand traffic we could not even queue a miss for.
    ++stats_.rejected_backlog;
    return false;
  }

  ++accepted_this_cycle_;
  ++bank_accepts_[bank];
  pipeline_.push(LookupEntry{req, now + cfg_.hit_latency, is_writeback});

  if (!is_writeback) {
    ++demand_in_pipeline_;
    ++stats_.accesses;
    if (req.core < cfg_.num_cores) ++stats_.core_accesses[req.core];
    if (probe_ != nullptr) {
      probe_->on_access(req.id, now, req.kind == AccessKind::kWrite);
    }
  }
  return true;
}

void Cache::on_response(const MemResponse& rsp) { fill_q_.push(rsp); }

void Cache::sample_activity(Cycle cycle) {
  if (probe_ == nullptr) return;
  // demand_in_pipeline_ counts the demand accesses currently in their hit
  // (lookup) phase; writebacks are bandwidth, not demand accesses, and are
  // excluded from C-AMAT counters.
  //
  // Once the probe has seen one zero-activity cycle with no outstanding miss
  // (no demand lookup in flight, no MSHR entry, no replayed miss waiting),
  // further idle samples cannot change any metric: they only re-zero the
  // phase-edge state. Skip them so quiet caches cost nothing per cycle.
  const bool idle = demand_in_pipeline_ == 0 && mshr_.in_use() == 0 &&
                    mshr_wait_.empty();
  if (idle && probe_quiesced_) return;
  probe_->on_cycle_activity(cycle, demand_in_pipeline_);
  probe_quiesced_ = idle;
}

void Cache::tick(Cycle now) {
  // (1) Probe sampling for the *previous* cycle: all state mutations for it
  // (including late try_access calls from upper components) are complete.
  if (now > 0) sample_activity(now - 1);

  // (2) Reset per-cycle acceptance accounting (bank counters only when
  // something was accepted; they are already zero otherwise).
  accept_cycle_ = now;
  if (accepted_this_cycle_ != 0) {
    std::fill(bank_accepts_.begin(), bank_accepts_.end(), 0);
    accepted_this_cycle_ = 0;
  }

  // Idle fast path: with nothing in flight anywhere, steps (3)-(7) are all
  // no-ops. This is the common case for upper levels whose working set fits
  // (and for every level while the core crunches ALU phases).
  if (pipeline_.empty() && fill_q_.empty() && deferred_fill_blocks_.empty() &&
      mshr_wait_.empty() && mshr_.in_use() == 0 && writeback_q_.empty() &&
      prefetch_q_.empty()) {
    return;
  }

  // (3) Install fills: deferred ones first (FIFO fairness), then new ones.
  for (std::size_t i = deferred_fill_blocks_.size(); i > 0; --i) {
    const Addr blk = deferred_fill_blocks_.front();
    deferred_fill_blocks_.pop();
    if (!try_install_fill(blk, now)) {
      deferred_fill_blocks_.push(blk);
      break;  // still blocked on writeback space; keep order
    }
  }
  while (!fill_q_.empty()) {
    const MemResponse rsp = fill_q_.front();
    fill_q_.pop();
    const Addr blk = block_addr(rsp.addr);
    if (!try_install_fill(blk, now)) {
      ++stats_.deferred_fills;
      deferred_fill_blocks_.push(blk);
    }
  }

  // (4) Retry misses waiting for MSHR resources (entries may have freed).
  for (std::size_t i = mshr_wait_.size(); i > 0; --i) {
    const WaitingMiss wm = mshr_wait_.front();
    mshr_wait_.pop();
    if (!try_handle_miss(wm.req, wm.miss_start, now)) {
      mshr_wait_.push(wm);
      ++stats_.mshr_full_waits;
    }
  }

  // (5) Complete lookups whose pipeline latency elapsed.
  while (!pipeline_.empty() && pipeline_.front().ready <= now) {
    const LookupEntry entry = pipeline_.front();
    pipeline_.pop();
    if (!entry.is_writeback) --demand_in_pipeline_;
    complete_lookup(entry, now);
  }

  // (6) Turn prefetch candidates into MSHR entries (demand keeps one
  // reserved entry), then send not-yet-issued fills downstream.
  launch_prefetches(now);
  issue_pending_fills(now);

  // (7) Drain the writeback buffer.
  drain_writebacks();
}

void Cache::note_prefetch_useful() { ++pf_window_useful_; }

void Cache::adapt_prefetch_degree() {
  if (pf_window_issued_ < cfg_.prefetch_accuracy_window) return;
  const double accuracy = static_cast<double>(pf_window_useful_) /
                          static_cast<double>(pf_window_issued_);
  if (accuracy < 0.15) {
    effective_prefetch_degree_ = 1;  // probe mode: keep sampling accuracy
  } else if (accuracy < 0.40) {
    effective_prefetch_degree_ =
        std::max<std::uint32_t>(1, cfg_.prefetch_degree / 2);
  } else {
    effective_prefetch_degree_ = cfg_.prefetch_degree;
  }
  pf_window_issued_ = 0;
  pf_window_useful_ = 0;
}

void Cache::schedule_prefetches(Addr demand_block, CoreId core) {
  if (effective_prefetch_degree_ == 0) return;
  // Keep the candidate queue bounded; stale candidates are the least useful,
  // so the oldest are dropped to make room for fresh ones.
  const std::size_t cap = static_cast<std::size_t>(cfg_.prefetch_degree) * 8;
  for (std::uint32_t i = 1; i <= effective_prefetch_degree_; ++i) {
    while (prefetch_q_.size() >= cap) prefetch_q_.pop();
    prefetch_q_.push(PrefetchCandidate{
        demand_block + static_cast<Addr>(i) * cfg_.block_bytes, core});
  }
}

void Cache::launch_prefetches(Cycle now) {
  while (!prefetch_q_.empty()) {
    // Always leave one MSHR entry free for demand misses.
    if (mshr_.in_use() + 1 >= std::min(mshr_.capacity(), runtime_mshr_limit_)) {
      break;
    }
    const PrefetchCandidate cand = prefetch_q_.front();
    prefetch_q_.pop();
    if (contains_block(cand.block) || mshr_.find(cand.block).has_value()) continue;
    if (cfg_.mshr_quota_per_core > 0 && cand.core != kNoCore &&
        mshr_.in_use_by(cand.core) >= cfg_.mshr_quota_per_core) {
      continue;  // prefetches never exceed their core's parallelism share
    }
    mshr_.allocate_prefetch(cand.block, now, cand.core);
    ++mshr_unissued_;
    ++stats_.prefetches_issued;
    ++pf_window_issued_;
    adapt_prefetch_degree();
  }
}

void Cache::complete_lookup(const LookupEntry& entry, Cycle now) {
  const MemRequest& req = entry.req;
  const std::uint32_t way = find_way(req.addr);
  const std::size_t slot =
      way == kNoWay ? 0 : set_index(req.addr) * cfg_.associativity + way;

  if (entry.is_writeback) {
    if (way != kNoWay) {
      line_flags_[slot] |= kLineDirty;
      repl_[set_index(req.addr)].touch(way, ++repl_tick_);
      ++stats_.writeback_hits;
    } else {
      // No allocation on writeback miss: forward the dirty data downstream.
      MemRequest fwd = req;
      fwd.addr = block_addr(req.addr);
      writeback_q_.push_back(fwd);
      ++stats_.writeback_forwards;
    }
    return;
  }

  if (way != kNoWay) {
    ++stats_.hits;
    if ((line_flags_[slot] & kLinePrefetched) != 0) {
      // First demand touch of a prefetched line: the stream is live, keep
      // running ahead of it (classic tagged next-N-line prefetching).
      ++stats_.prefetch_hits;
      note_prefetch_useful();
      line_flags_[slot] &= static_cast<std::uint8_t>(~kLinePrefetched);
      schedule_prefetches(block_addr(req.addr), req.core);
    }
    if (req.kind == AccessKind::kWrite) line_flags_[slot] |= kLineDirty;
    repl_[set_index(req.addr)].touch(way, ++repl_tick_);
    if (probe_ != nullptr) probe_->on_hit(req.id, now);
    if (req.reply_to != nullptr) {
      req.reply_to->on_response(MemResponse{req.id, req.core, req.addr, now});
    }
    return;
  }

  // Miss: it becomes outstanding now, whether or not an MSHR is available.
  ++stats_.misses;
  if (req.core < cfg_.num_cores) ++stats_.core_misses[req.core];
  if (probe_ != nullptr) probe_->on_miss(req.id, now);
  if (!try_handle_miss(req, now, now)) {
    mshr_wait_.push(WaitingMiss{req, now});
  }
  schedule_prefetches(block_addr(req.addr), req.core);
}

bool Cache::try_handle_miss(const MemRequest& req, Cycle miss_start, Cycle now) {
  const Addr blk = block_addr(req.addr);
  const MshrTarget target{req.id, req.core, req.kind, req.reply_to, miss_start};

  if (const auto idx = mshr_.find(blk)) {
    if (!mshr_.can_add_target(*idx)) return false;
    if (mshr_.entry(*idx).is_prefetch) {
      // A demand miss caught up with an in-flight prefetch: the prefetch
      // absorbs (part of) the miss penalty.
      ++stats_.prefetch_coalesced;
      note_prefetch_useful();
    }
    mshr_.add_target(*idx, target);
    ++stats_.mshr_coalesced;
    return true;
  }
  if (!mshr_.can_allocate() || mshr_.in_use() >= runtime_mshr_limit_) {
    return false;
  }
  if (cfg_.mshr_quota_per_core > 0 && req.core != kNoCore &&
      mshr_.in_use_by(req.core) >= cfg_.mshr_quota_per_core) {
    ++stats_.quota_waits;
    return false;
  }
  mshr_.allocate(blk, target, now);
  ++mshr_unissued_;
  return true;
}

void Cache::issue_pending_fills(Cycle now) {
  if (mshr_unissued_ == 0) return;
  const std::uint32_t cap = mshr_.capacity();
  for (std::uint32_t idx = 0; idx < cap; ++idx) {
    MshrEntry& e = mshr_.entry(idx);
    if (!e.valid || e.issued) continue;
    MemRequest fill;
    fill.id = next_fill_id_++;
    fill.core = e.targets.empty() ? e.core : e.targets.front().core;
    fill.addr = e.block_addr;
    fill.kind = AccessKind::kRead;
    fill.created = now;
    fill.reply_to = this;
    if (below_->try_access(fill)) {
      e.issued = true;
      e.fill_id = fill.id;
      if (--mshr_unissued_ == 0) return;
    }
    // On rejection we simply retry next cycle.
  }
}

bool Cache::try_install_fill(Addr blk, Cycle now) {
  const auto idx = mshr_.find(blk);
  util::require(idx.has_value(), "Cache: fill for unknown block");

  const std::uint64_t set = set_index(blk);
  const std::size_t base = set * cfg_.associativity;

  std::uint32_t way = cfg_.associativity;  // sentinel
  for (std::uint32_t w = 0; w < cfg_.associativity; ++w) {
    if (line_tags_[base + w] == kInvalidTag) {
      way = w;
      break;
    }
  }
  if (way == cfg_.associativity) {
    way = repl_[set].victim(rng_);
    if ((line_flags_[base + way] & kLineDirty) != 0) {
      if (writeback_q_.size() >= cfg_.writeback_capacity) {
        return false;  // no room to evict; defer the install
      }
      MemRequest wb;
      wb.id = next_fill_id_++;
      wb.core = kNoCore;
      wb.addr = line_tags_[base + way];
      wb.kind = AccessKind::kWrite;
      wb.created = now;
      wb.reply_to = nullptr;
      writeback_q_.push_back(wb);
      ++stats_.writebacks;
    }
    ++stats_.evictions;
  }

  const bool pure_prefetch =
      mshr_.entry(*idx).is_prefetch && mshr_.entry(*idx).targets.empty();
  line_tags_[base + way] = blk;
  line_flags_[base + way] = pure_prefetch ? kLinePrefetched : 0;
  repl_[set].fill(way, ++repl_tick_);
  ++stats_.fills;

  mshr_.release_into(*idx, release_scratch_);
  for (const MshrTarget& t : release_scratch_) {
    if (t.kind == AccessKind::kWrite) line_flags_[base + way] |= kLineDirty;
    if (probe_ != nullptr) probe_->on_miss_done(t.id, now);
    if (t.reply_to != nullptr) {
      t.reply_to->on_response(MemResponse{t.id, t.core, blk, now});
    }
  }
  return true;
}

void Cache::set_ports(std::uint32_t ports) {
  util::require(ports >= 1, cfg_.name, ": ports must be >= 1");
  if (ports == runtime_ports_) return;
  runtime_ports_ = ports;
  runtime_per_bank_ = cfg_.banks == 1
                          ? runtime_ports_
                          : std::max<std::uint32_t>(1, runtime_ports_ / cfg_.banks);
  reserve_pools();  // more ports -> deeper pipeline and more in-flight misses
  ++reconfig_ops_;
}

void Cache::set_mshr_limit(std::uint32_t limit) {
  const std::uint32_t clamped =
      std::max<std::uint32_t>(1, std::min(limit, cfg_.mshr_entries));
  if (clamped == runtime_mshr_limit_) return;
  runtime_mshr_limit_ = clamped;
  ++reconfig_ops_;
}

void Cache::set_prefetch_degree(std::uint32_t degree) {
  if (degree == cfg_.prefetch_degree && degree == effective_prefetch_degree_) {
    return;
  }
  cfg_.prefetch_degree = degree;  // new adaptation target
  effective_prefetch_degree_ = degree;
  reserve_pools();  // a higher degree widens the candidate queue
  ++reconfig_ops_;
}

void Cache::drain_writebacks() {
  while (!writeback_q_.empty()) {
    if (!below_->try_access(writeback_q_.front())) break;
    writeback_q_.pop_front();
  }
}

void Cache::finalize(Cycle end_cycle) { sample_activity(end_cycle); }

bool Cache::busy() const {
  return !pipeline_.empty() || mshr_.in_use() > 0 || !mshr_wait_.empty() ||
         !writeback_q_.empty() || !fill_q_.empty() || !deferred_fill_blocks_.empty();
}

void CacheStats::publish(obs::MetricsRegistry& registry,
                         const std::string& level) const {
  registry.counter("sim.cache.accesses." + level).add(accesses);
  registry.counter("sim.cache.hits." + level).add(hits);
  registry.counter("sim.cache.misses." + level).add(misses);
}

}  // namespace lpm::mem
