// Miss Status Holding Registers: the structure that makes a cache
// non-blocking. Each entry tracks one in-flight block fill plus the demand
// accesses (targets) coalesced onto it. Entry and target counts are the
// "MSHR numbers" knob of Table I.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mem/request.hpp"
#include "util/types.hpp"

namespace lpm::mem {

struct MshrTarget {
  RequestId id = kNoRequest;
  CoreId core = kNoCore;
  AccessKind kind = AccessKind::kRead;
  ResponseSink* reply_to = nullptr;
  Cycle miss_start = 0;  ///< when the access became an outstanding miss
};

struct MshrEntry {
  Addr block_addr = 0;        ///< block-aligned address being filled
  bool valid = false;
  bool issued = false;        ///< fill request accepted by the lower level
  bool is_prefetch = false;   ///< allocated by the prefetcher (may have no targets)
  CoreId core = kNoCore;      ///< originating core (prefetch attribution)
  RequestId fill_id = kNoRequest;  ///< id of the fill request sent downstream
  Cycle allocated = 0;
  std::vector<MshrTarget> targets;
};

/// Fixed-size MSHR file with block coalescing.
class MshrFile {
 public:
  MshrFile(std::uint32_t entries, std::uint32_t max_targets);

  /// Index of the entry currently filling `block_addr`, if any.
  [[nodiscard]] std::optional<std::uint32_t> find(Addr block_addr) const;

  /// True when a new entry can be allocated.
  [[nodiscard]] bool can_allocate() const { return free_ > 0; }

  /// True when entry `idx` can take one more coalesced target.
  [[nodiscard]] bool can_add_target(std::uint32_t idx) const;

  /// Allocates an entry for `block_addr` with one initial target. Requires
  /// can_allocate().
  std::uint32_t allocate(Addr block_addr, const MshrTarget& target, Cycle now);

  /// Allocates a targetless prefetch entry. Requires can_allocate().
  std::uint32_t allocate_prefetch(Addr block_addr, Cycle now,
                                  CoreId core = kNoCore);

  /// Adds a coalesced target. Requires can_add_target(idx).
  void add_target(std::uint32_t idx, const MshrTarget& target);

  /// Releases entry `idx`, returning its targets for completion.
  std::vector<MshrTarget> release(std::uint32_t idx);

  /// Allocation-free variant: swaps entry `idx`'s targets into `out`
  /// (clearing `out`'s previous contents) and frees the entry. The entry
  /// inherits `out`'s old storage, so in steady state no release or
  /// subsequent coalescing allocates.
  void release_into(std::uint32_t idx, std::vector<MshrTarget>& out);

  [[nodiscard]] MshrEntry& entry(std::uint32_t idx);
  [[nodiscard]] const MshrEntry& entry(std::uint32_t idx) const;

  [[nodiscard]] std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(entries_.size());
  }
  [[nodiscard]] std::uint32_t in_use() const { return capacity() - free_; }
  [[nodiscard]] std::uint32_t max_targets() const { return max_targets_; }

  /// Total demand accesses currently waiting across all entries.
  [[nodiscard]] std::uint32_t outstanding_targets() const;

  /// Entries currently held by `core` (kNoCore-owned entries are uncounted).
  /// Backs the memory-parallelism-partition feature (per-core MSHR quotas).
  [[nodiscard]] std::uint32_t in_use_by(CoreId core) const;

  /// Indices of valid entries (for iteration by the cache). Allocates the
  /// returned vector — test/diagnostic use only; hot paths iterate
  /// [0, capacity) and check entry(i).valid instead.
  [[nodiscard]] std::vector<std::uint32_t> valid_entries() const;

 private:
  std::vector<MshrEntry> entries_;
  std::uint32_t max_targets_;
  std::uint32_t free_;
};

}  // namespace lpm::mem
