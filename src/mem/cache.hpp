// Non-blocking, multi-port, banked, pipelined set-associative cache.
//
// This is the substrate the LPM paper assumes: concurrency-driven cache
// structures (multi-port / multi-bank / pipelined lookup / MSHRs) whose
// parameters are the Table-I reconfiguration knobs. The cache is
// write-back / write-allocate for demand traffic; writebacks arriving from
// an upper level are absorbed on hit and forwarded downstream on miss
// (no fetch-on-writeback).
//
// Timing model:
//  * try_access() accepts up to `ports` demand/writeback requests per cycle,
//    at most max(1, ports/banks) per bank per cycle.
//  * every accepted request occupies the lookup pipeline for `hit_latency`
//    cycles; those cycles are its *hit phase* (C-AMAT hit activity), for
//    hits and misses alike (paper Fig. 1).
//  * a miss allocates (or coalesces onto) an MSHR entry and is outstanding
//    until the block fill returns from the level below; if the MSHR file is
//    saturated the miss waits in a bounded replay queue.
//  * dirty victims enter a bounded writeback buffer drained to the level
//    below; a fill that cannot evict (buffer full) is deferred.
#pragma once

#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "mem/mshr.hpp"
#include "mem/probe.hpp"
#include "mem/replacement.hpp"

namespace lpm::obs {
class MetricsRegistry;
}
#include "mem/request.hpp"
#include "util/ring_buffer.hpp"
#include "util/rng.hpp"

namespace lpm::mem {

struct CacheConfig {
  std::string name = "L1";
  std::uint64_t size_bytes = 32 * 1024;
  std::uint32_t block_bytes = 64;
  std::uint32_t associativity = 4;
  std::uint32_t hit_latency = 3;   ///< lookup pipeline depth (cycles)
  std::uint32_t ports = 1;         ///< accepted accesses per cycle
  std::uint32_t banks = 1;         ///< independent banks (interleaving)
  std::uint64_t interleave_bytes = 64;  ///< bank interleaving granularity
  std::uint32_t mshr_entries = 4;
  std::uint32_t mshr_targets = 8;  ///< coalesced accesses per entry
  std::uint32_t writeback_capacity = 8;
  /// Tagged next-N-line prefetcher: a demand miss on block B also requests
  /// B+1 .. B+prefetch_degree (0 disables). Prefetches ride ordinary MSHR
  /// entries (one is always reserved for demand misses), so the MSHR knob
  /// throttles prefetch aggressiveness exactly like any other concurrency.
  /// The effective degree adapts to measured accuracy (useful/issued over a
  /// window): irregular access patterns automatically squelch the streamer.
  std::uint32_t prefetch_degree = 0;
  std::uint32_t prefetch_accuracy_window = 256;  ///< issued prefetches per adaptation
  /// Memory parallelism partition (paper SVII future work): when non-zero,
  /// each core may occupy at most this many MSHR entries, preventing one
  /// miss-heavy program from monopolizing the shared level's concurrency.
  /// Coalescing onto an existing entry is always allowed.
  std::uint32_t mshr_quota_per_core = 0;
  ReplacementPolicy replacement = ReplacementPolicy::kLru;
  std::uint32_t num_cores = 1;     ///< for per-core attribution counters
  std::uint64_t seed = 99;         ///< random-replacement stream

  void validate() const;
  [[nodiscard]] std::uint64_t num_sets() const {
    return size_bytes / (static_cast<std::uint64_t>(block_bytes) * associativity);
  }
  /// Per-bank acceptances per cycle: a monolithic array (banks == 1) exposes
  /// all its ports; a banked array gives each bank ports/banks (>= 1).
  [[nodiscard]] std::uint32_t per_bank_limit() const {
    return banks == 1 ? ports : std::max<std::uint32_t>(1, ports / banks);
  }
};

struct CacheStats {
  std::uint64_t accesses = 0;       ///< demand accesses (loads + stores)
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;         ///< includes coalesced (MSHR-hit) misses
  std::uint64_t mshr_coalesced = 0;
  std::uint64_t rejected_ports = 0;
  std::uint64_t rejected_bank = 0;
  std::uint64_t rejected_backlog = 0;
  std::uint64_t mshr_full_waits = 0;  ///< miss-cycles spent waiting for an MSHR
  std::uint64_t writebacks = 0;
  std::uint64_t writeback_hits = 0;   ///< upper-level writebacks absorbed
  std::uint64_t writeback_forwards = 0;
  std::uint64_t fills = 0;
  std::uint64_t evictions = 0;
  std::uint64_t deferred_fills = 0;
  std::uint64_t prefetches_issued = 0;
  std::uint64_t prefetch_hits = 0;     ///< demand hits on prefetched lines
  std::uint64_t prefetch_coalesced = 0;  ///< demand misses absorbed by an in-flight prefetch
  std::uint64_t quota_waits = 0;  ///< miss-allocations deferred by the MSHR quota
  std::vector<std::uint64_t> core_accesses;
  std::vector<std::uint64_t> core_misses;

  [[nodiscard]] double miss_rate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses) / static_cast<double>(accesses);
  }

  /// Exact counter-wise equality (differential testing compares whole
  /// stats blocks between the optimized cache and check::RefCache).
  friend bool operator==(const CacheStats&, const CacheStats&) = default;

  /// Bulk-adds this stats block to the per-level counters
  /// sim.cache.{accesses,hits,misses}.<level> in `registry` (called once
  /// per run epilogue, never per cycle). Thread-safe.
  void publish(obs::MetricsRegistry& registry, const std::string& level) const;
};

class Cache final : public MemoryLevel, public ResponseSink {
 public:
  /// `below` is non-owning and must outlive the cache. `id_space`
  /// disambiguates fill-request ids when several caches share a lower level.
  Cache(CacheConfig cfg, MemoryLevel* below, std::uint64_t id_space = 1);

  /// Attaches the C-AMAT probe (non-owning; may be nullptr).
  void set_probe(AccessProbe* probe) { probe_ = probe; }

  bool try_access(const MemRequest& req) override;
  void tick(Cycle now) override;
  void finalize(Cycle end_cycle) override;
  [[nodiscard]] bool busy() const override;

  /// Fills arriving from the level below.
  void on_response(const MemResponse& rsp) override;

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] const CacheConfig& config() const { return cfg_; }

  /// Test hook: whether `addr`'s block currently resides in the array.
  [[nodiscard]] bool contains_block(Addr addr) const;
  /// Test hook: whether `addr`'s block is dirty (false if absent).
  [[nodiscard]] bool block_dirty(Addr addr) const;

  // --- online reconfiguration (paper SIV: configurable hardware) ---
  // Concurrency knobs may be re-set while the cache runs; in-flight work is
  // unaffected (a lowered MSHR limit drains naturally). Each call counts as
  // one reconfiguration operation (the paper charges 4 cycles apiece;
  // callers account the cost).
  void set_ports(std::uint32_t ports);
  void set_mshr_limit(std::uint32_t limit);  ///< clamped to [1, cfg.mshr_entries]
  void set_prefetch_degree(std::uint32_t degree);
  [[nodiscard]] std::uint32_t ports() const { return runtime_ports_; }
  [[nodiscard]] std::uint32_t mshr_limit() const { return runtime_mshr_limit_; }
  [[nodiscard]] std::uint32_t prefetch_degree() const {
    return effective_prefetch_degree_;
  }
  [[nodiscard]] std::uint64_t reconfigurations() const { return reconfig_ops_; }

  [[nodiscard]] Addr block_addr(Addr addr) const {
    return addr & ~static_cast<Addr>(cfg_.block_bytes - 1);
  }

 private:
  // Line metadata is structure-of-arrays: the lookup fast path scans only
  // the contiguous tag array (8 bytes per way); dirty/prefetched bits live
  // in a separate flag array touched on hit/fill/evict. Validity is encoded
  // in the tag itself (kInvalidTag never equals a block-aligned address),
  // so a tag match needs no second load.
  static constexpr Addr kInvalidTag = ~Addr{0};
  static constexpr std::uint32_t kNoWay = ~std::uint32_t{0};
  static constexpr std::uint8_t kLineDirty = 1u << 0;
  static constexpr std::uint8_t kLinePrefetched = 1u << 1;

  struct LookupEntry {
    MemRequest req;
    Cycle ready = 0;
    bool is_writeback = false;
  };

  [[nodiscard]] std::uint64_t set_index(Addr addr) const;
  [[nodiscard]] std::uint32_t bank_of(Addr addr) const;
  /// Way of `addr`'s block within its set, or kNoWay when absent.
  [[nodiscard]] std::uint32_t find_way(Addr addr) const;

  void sample_activity(Cycle cycle);
  void complete_lookup(const LookupEntry& entry, Cycle now);
  /// Attempts MSHR allocation/coalescing; false = must wait and retry.
  bool try_handle_miss(const MemRequest& req, Cycle miss_start, Cycle now);
  /// Installs a filled block; false = deferred (writeback buffer full).
  bool try_install_fill(Addr blk, Cycle now);
  void issue_pending_fills(Cycle now);
  void drain_writebacks();
  void schedule_prefetches(Addr demand_block, CoreId core);
  void launch_prefetches(Cycle now);

  CacheConfig cfg_;
  MemoryLevel* below_;          // non-owning
  AccessProbe* probe_ = nullptr;  // non-owning

  std::vector<Addr> line_tags_;           // num_sets * assoc, row-major by set
  std::vector<std::uint8_t> line_flags_;  // kLineDirty | kLinePrefetched
  std::vector<ReplacementState> repl_;
  MshrFile mshr_;
  util::Rng rng_;

  // Hot queues are preallocated ring buffers (no steady-state allocation);
  // each one's capacity is a provable occupancy bound, re-derived by
  // reserve_pools() when a reconfiguration knob loosens it. Only
  // writeback_q_ stays a deque: forwarded upper-level writebacks have no
  // structural bound when the level below refuses traffic.
  util::RingBuffer<LookupEntry> pipeline_{1};  // <= ports * hit_latency
  struct WaitingMiss {
    MemRequest req;
    Cycle miss_start = 0;
  };
  // Replay pool: admission caps demand at mshr_wait_cap_, but accesses
  // already in the lookup pipeline may still miss into the queue, so the
  // pool carries ports*hit_latency slack.
  util::RingBuffer<WaitingMiss> mshr_wait_{1};
  void reserve_pools();
  std::deque<MemRequest> writeback_q_;
  util::RingBuffer<MemResponse> fill_q_{1};  // <= one per MSHR entry
  util::RingBuffer<Addr> deferred_fill_blocks_{1};  // <= one per MSHR entry
  struct PrefetchCandidate {
    Addr block = 0;
    CoreId core = kNoCore;
  };
  // Candidates awaiting an MSHR; at capacity the oldest candidate is
  // dropped (stale prefetches are the least useful).
  util::RingBuffer<PrefetchCandidate> prefetch_q_{1};
  std::uint32_t effective_prefetch_degree_ = 0;
  std::uint64_t pf_window_issued_ = 0;
  std::uint64_t pf_window_useful_ = 0;
  void note_prefetch_useful();
  void adapt_prefetch_degree();

  Cycle accept_cycle_ = kNoCycle;
  std::uint32_t accepted_this_cycle_ = 0;
  std::uint32_t runtime_ports_ = 1;       // live value of the ports knob
  std::uint32_t runtime_per_bank_ = 1;    // derived per-bank acceptance cap
  std::uint32_t runtime_mshr_limit_ = 1;  // live cap on MSHR allocations
  std::uint64_t reconfig_ops_ = 0;
  std::vector<std::uint32_t> bank_accepts_;  // per-bank accepts this cycle
  std::uint64_t repl_tick_ = 0;              // logical time for LRU/FIFO
  RequestId next_fill_id_;
  std::size_t mshr_wait_cap_;

  // Hot-path bookkeeping kept incrementally so per-cycle work is O(1) when
  // the cache is quiet:
  std::uint32_t demand_in_pipeline_ = 0;  // non-writeback lookups in flight
  std::uint32_t mshr_unissued_ = 0;       // valid entries not yet sent below
  bool probe_quiesced_ = false;  // probe already saw a zero-activity cycle
  std::vector<MshrTarget> release_scratch_;  // reused by try_install_fill

  CacheStats stats_;
};

}  // namespace lpm::mem
