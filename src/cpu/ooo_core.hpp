// Trace-driven out-of-order core model.
//
// The model captures exactly the memory-side behaviour the LPM paper needs
// from gem5's O3 CPU: a reorder buffer bounding in-flight work, an
// instruction window bounding the scheduler, an LSQ bounding outstanding
// memory operations, multi-issue, and commit-side stall/overlap accounting
// (Eq. 7/8). Simplifications (no branch mispredictions, no store-to-load
// forwarding, stores retire at L1 acceptance) are documented in DESIGN.md.
#pragma once

#include <deque>
#include <unordered_map>

#include "cpu/core_config.hpp"
#include "mem/request.hpp"
#include "trace/trace_source.hpp"
#include "util/ring_buffer.hpp"

namespace lpm::cpu {

class OooCore final : public mem::ResponseSink {
 public:
  /// `l1` and `source` are non-owning and must outlive the core. `id_space`
  /// partitions request-id space among cores sharing a hierarchy.
  OooCore(CoreConfig cfg, trace::TraceSource* source, mem::MemoryLevel* l1,
          std::uint64_t id_space);

  /// Advances one cycle. Call after the memory hierarchy's tick for the
  /// same cycle (bottom-up ticking).
  void tick(Cycle now);

  /// True once the trace is exhausted, the ROB is empty, and no memory
  /// operation is in flight.
  [[nodiscard]] bool finished() const;

  void on_response(const mem::MemResponse& rsp) override;

  [[nodiscard]] const CoreStats& stats() const { return stats_; }
  [[nodiscard]] const CoreConfig& config() const { return cfg_; }

  /// In-flight accepted memory accesses (test hook).
  [[nodiscard]] std::size_t in_flight_mem() const { return in_flight_.size(); }

 private:
  enum class State : std::uint8_t {
    kDispatched,  ///< in ROB + IW, waiting for operands / issue slot
    kExecuting,   ///< ALU busy or memory op in flight
    kMemWaiting,  ///< memory op accepted, waiting for response
    kDone,        ///< ready to commit
  };
  struct RobEntry {
    trace::MicroOp op;
    std::uint64_t index = 0;  ///< dynamic instruction number
    State state = State::kDispatched;
    Cycle done_at = kNoCycle;     ///< ALU completion time
    RequestId mem_id = kNoRequest;
  };

  [[nodiscard]] bool deps_ready(const RobEntry& e) const;
  [[nodiscard]] bool dep_done(std::uint64_t index, std::uint32_t dist) const;
  void do_commit(Cycle now);
  void do_complete(Cycle now);
  void do_issue(Cycle now);
  void do_dispatch(Cycle now);

  CoreConfig cfg_;
  trace::TraceSource* source_;   // non-owning
  mem::MemoryLevel* l1_;         // non-owning
  util::RingBuffer<RobEntry> rob_;
  std::uint64_t next_index_ = 0;           ///< next dynamic instruction number
  std::uint64_t iw_occupancy_ = 0;         ///< dispatched-not-issued entries
  std::uint64_t lsq_occupancy_ = 0;        ///< memory ops issued-not-completed
  RequestId next_req_id_;
  std::unordered_map<RequestId, std::uint64_t> in_flight_;  // req id -> rob seq
  std::deque<mem::MemResponse> responses_;
  bool trace_done_ = false;
  std::uint64_t committed_this_cycle_ = 0;
  CoreStats stats_;
};

}  // namespace lpm::cpu
