// Trace-driven out-of-order core model.
//
// The model captures exactly the memory-side behaviour the LPM paper needs
// from gem5's O3 CPU: a reorder buffer bounding in-flight work, an
// instruction window bounding the scheduler, an LSQ bounding outstanding
// memory operations, multi-issue, and commit-side stall/overlap accounting
// (Eq. 7/8). Simplifications (no branch mispredictions, no store-to-load
// forwarding, stores retire at L1 acceptance) are documented in DESIGN.md.
#pragma once

#include <array>
#include <vector>

#include "cpu/core_config.hpp"
#include "mem/request.hpp"
#include "trace/trace_source.hpp"
#include "util/ring_buffer.hpp"

namespace lpm::mem {
class Cache;
}

namespace lpm::cpu {

class OooCore final : public mem::ResponseSink {
 public:
  /// `l1` and `source` are non-owning and must outlive the core. `id_space`
  /// partitions request-id space among cores sharing a hierarchy.
  OooCore(CoreConfig cfg, trace::TraceSource* source, mem::MemoryLevel* l1,
          std::uint64_t id_space);

  /// Advances one cycle. Call after the memory hierarchy's tick for the
  /// same cycle (bottom-up ticking).
  void tick(Cycle now);

  /// True once the trace is exhausted, the ROB is empty, and no memory
  /// operation is in flight.
  [[nodiscard]] bool finished() const;

  void on_response(const mem::MemResponse& rsp) override;

  [[nodiscard]] const CoreStats& stats() const { return stats_; }
  [[nodiscard]] const CoreConfig& config() const { return cfg_; }

  /// In-flight accepted memory accesses (test hook).
  [[nodiscard]] std::size_t in_flight_mem() const { return lsq_occupancy_; }

 private:
  enum class State : std::uint8_t {
    kDispatched,  ///< in ROB + IW, waiting for operands / issue slot
    kExecuting,   ///< ALU busy or memory op in flight
    kMemWaiting,  ///< memory op accepted, waiting for response
    kDone,        ///< ready to commit
  };
  struct RobEntry {
    trace::MicroOp op;
    std::uint64_t index = 0;  ///< dynamic instruction number
    State state = State::kDispatched;
    Cycle done_at = kNoCycle;     ///< ALU completion time
    RequestId mem_id = kNoRequest;
  };

  /// Micro-ops pulled per TraceSource::fill call: one virtual call amortized
  /// over a whole chunk instead of one per dispatched instruction.
  static constexpr std::size_t kTraceChunk = 256;

  /// Memory-request ids carry the ROB sequence number in their low bits
  /// (the id space tag sits above). Sequence numbers are unique for the
  /// lifetime of a core, so no in-flight map is needed to route responses.
  static constexpr std::uint64_t kSeqBits = 48;
  static constexpr std::uint64_t kSeqMask = (std::uint64_t{1} << kSeqBits) - 1;

  [[nodiscard]] bool deps_ready(const RobEntry& e) const;
  [[nodiscard]] bool dep_done(std::uint64_t index, std::uint32_t dist) const;
  void do_commit(Cycle now);
  void do_complete(Cycle now);
  void do_issue(Cycle now);
  void do_dispatch(Cycle now);
  /// Pulls the next chunk from the trace; false = source exhausted.
  bool refill_trace();
  /// L1 access through the devirtualized fast path when the level below is
  /// a concrete mem::Cache (the common case; Cache is final, so the call
  /// resolves statically), else through the MemoryLevel vtable.
  [[nodiscard]] bool l1_try_access(const mem::MemRequest& req);

  CoreConfig cfg_;
  trace::TraceSource* source_;   // non-owning
  mem::MemoryLevel* l1_;         // non-owning
  mem::Cache* l1_cache_ = nullptr;  // == l1_ when it is a Cache; non-owning
  // Trace chunk buffer: fill() writes straight into it, dispatch reads it
  // back out; refilled only when drained, so no wraparound bookkeeping.
  std::array<trace::MicroOp, kTraceChunk> trace_chunk_;
  std::size_t chunk_pos_ = 0;
  std::size_t chunk_len_ = 0;
  util::RingBuffer<RobEntry> rob_;
  std::uint64_t next_index_ = 0;           ///< next dynamic instruction number
  std::uint64_t iw_occupancy_ = 0;         ///< dispatched-not-issued entries
  std::uint64_t lsq_occupancy_ = 0;        ///< memory ops issued-not-completed
  RequestId id_base_;                      ///< id_space tag above the seq bits
  std::vector<std::uint64_t> executing_;   ///< ROB seqs of in-flight ALU ops
  util::RingBuffer<mem::MemResponse> responses_{1};  // sized to LSQ in ctor
  bool trace_done_ = false;
  std::uint64_t committed_this_cycle_ = 0;
  CoreStats stats_;
};

}  // namespace lpm::cpu
