#include "cpu/ooo_core.hpp"

#include "mem/cache.hpp"
#include "util/error.hpp"

namespace lpm::cpu {

void CoreConfig::validate() const {
  using util::require;
  require(issue_width >= 1, name, ": issue_width must be >= 1");
  require(dispatch_width >= 1, name, ": dispatch_width must be >= 1");
  require(commit_width >= 1, name, ": commit_width must be >= 1");
  require(iw_size >= 1, name, ": iw_size must be >= 1");
  require(rob_size >= 1, name, ": rob_size must be >= 1");
  require(lsq_size >= 1, name, ": lsq_size must be >= 1");
  require(iw_size <= rob_size, name, ": IW cannot exceed the ROB");
}

CoreConfig CoreConfig::in_order(CoreId id) {
  CoreConfig cfg;
  cfg.name = "inorder";
  cfg.id = id;
  cfg.issue_width = 1;
  cfg.dispatch_width = 1;
  cfg.commit_width = 1;
  cfg.iw_size = 1;
  cfg.rob_size = 1;
  cfg.lsq_size = 1;
  return cfg;
}

OooCore::OooCore(CoreConfig cfg, trace::TraceSource* source, mem::MemoryLevel* l1,
                 std::uint64_t id_space)
    : cfg_(std::move(cfg)),
      source_(source),
      l1_(l1),
      rob_(cfg_.rob_size),
      id_base_(id_space << kSeqBits) {
  cfg_.validate();
  util::require(source_ != nullptr, cfg_.name, ": trace source must exist");
  util::require(l1_ != nullptr, cfg_.name, ": L1 must exist");
  l1_cache_ = dynamic_cast<mem::Cache*>(l1_);
  executing_.reserve(cfg_.rob_size);  // executing ALU ops are ROB-bounded
  // A response is only in flight for an accepted memory op, so the LSQ depth
  // bounds the response queue.
  responses_ = util::RingBuffer<mem::MemResponse>(cfg_.lsq_size);
}

bool OooCore::l1_try_access(const mem::MemRequest& req) {
  return l1_cache_ != nullptr ? l1_cache_->try_access(req)
                              : l1_->try_access(req);
}

bool OooCore::refill_trace() {
  chunk_len_ = source_->fill(trace_chunk_.data(), kTraceChunk);
  chunk_pos_ = 0;
  return chunk_len_ > 0;
}

bool OooCore::dep_done(std::uint64_t index, std::uint32_t dist) const {
  if (dist == 0 || static_cast<std::uint64_t>(dist) > index) return true;
  const std::uint64_t dep = index - dist;
  if (dep < rob_.head_seq()) return true;  // already retired
  if (!rob_.contains_seq(dep)) return true;  // beyond tail cannot happen; be safe
  return rob_.at_seq(dep).state == State::kDone;
}

bool OooCore::deps_ready(const RobEntry& e) const {
  return dep_done(e.index, e.op.dep_dist) && dep_done(e.index, e.op.dep_dist2);
}

void OooCore::on_response(const mem::MemResponse& rsp) { responses_.push(rsp); }

void OooCore::tick(Cycle now) {
  if (finished()) return;  // stop accounting once this program is done

  committed_this_cycle_ = 0;

  // (1) Absorb memory responses (possibly generated earlier this cycle by
  // the hierarchy, which ticks before the core). The ROB sequence number is
  // recovered straight from the response id (see kSeqBits).
  while (!responses_.empty()) {
    const mem::MemResponse rsp = responses_.front();
    responses_.pop();
    const std::uint64_t seq = rsp.id & kSeqMask;
    util::require((rsp.id & ~kSeqMask) == id_base_ && seq < next_index_,
                  "OooCore: response for unknown request");
    util::require(lsq_occupancy_ > 0, "OooCore: LSQ underflow");
    --lsq_occupancy_;
    if (rob_.contains_seq(seq)) {
      RobEntry& e = rob_.at_seq(seq);
      if (e.state == State::kMemWaiting) e.state = State::kDone;
    }
    // Stores may already have retired (they commit at L1 acceptance).
  }

  do_complete(now);
  do_commit(now);
  do_issue(now);
  do_dispatch(now);

  // (2) Cycle accounting (Eq. 7/8 definitions; see DESIGN.md). A data-stall
  // cycle is one where the processor is *blocked* waiting for data: nothing
  // commits and the ROB head is an incomplete memory operation. Every other
  // memory-active cycle counts as computation/memory overlap, so stall and
  // overlap exactly partition the memory-active cycles (making Eq. 7 an
  // identity).
  ++stats_.cycles;
  const bool mem_active = lsq_occupancy_ > 0;
  bool head_blocked_on_mem = false;
  if (committed_this_cycle_ == 0 && !rob_.empty()) {
    const RobEntry& head = rob_.front();
    head_blocked_on_mem =
        trace::is_memory(head.op.type) && head.state != State::kDone;
    if (head_blocked_on_mem) ++stats_.head_mem_stall_cycles;
  }
  if (committed_this_cycle_ > 0) ++stats_.commit_cycles;
  if (mem_active) {
    ++stats_.mem_active_cycles;
    if (head_blocked_on_mem) {
      ++stats_.data_stall_cycles;
    } else {
      ++stats_.overlap_cycles;
    }
  }
}

void OooCore::do_complete(Cycle now) {
  // Only ALU ops pass through kExecuting, and an executing entry can neither
  // commit nor be squashed, so its seq stays valid until completion; scanning
  // this compact list replaces a full ROB sweep. Removal order within a cycle
  // is immaterial: every due entry is marked before commit/issue run.
  for (std::size_t i = 0; i < executing_.size();) {
    RobEntry& e = rob_.at_seq(executing_[i]);
    if (e.done_at <= now) {
      e.state = State::kDone;
      executing_[i] = executing_.back();
      executing_.pop_back();
    } else {
      ++i;
    }
  }
}

void OooCore::do_commit(Cycle /*now*/) {
  while (committed_this_cycle_ < cfg_.commit_width && !rob_.empty() &&
         rob_.front().state == State::kDone) {
    const RobEntry& e = rob_.front();
    ++stats_.instructions;
    switch (e.op.type) {
      case trace::OpType::kLoad:
        ++stats_.mem_ops;
        ++stats_.loads;
        break;
      case trace::OpType::kStore:
        ++stats_.mem_ops;
        ++stats_.stores;
        break;
      case trace::OpType::kAlu:
        break;
    }
    rob_.pop();
    ++committed_this_cycle_;
  }
}

void OooCore::do_issue(Cycle now) {
  std::uint32_t issued = 0;
  bool mem_port_blocked = false;
  // iw_occupancy_ counts the kDispatched entries; once the scan has seen
  // them all, the rest of the ROB holds nothing issuable.
  std::uint64_t unseen = iw_occupancy_;
  for (std::size_t i = 0;
       i < rob_.size() && issued < cfg_.issue_width && unseen > 0; ++i) {
    RobEntry& e = rob_.at_offset(i);
    if (e.state != State::kDispatched) continue;
    --unseen;
    if (!deps_ready(e)) continue;

    if (e.op.type == trace::OpType::kAlu) {
      e.state = State::kExecuting;
      e.done_at = now + e.op.exec_latency;
      executing_.push_back(e.index);
      --iw_occupancy_;
      ++issued;
      continue;
    }

    // Memory op: needs an LSQ slot and an L1 port.
    if (mem_port_blocked || lsq_occupancy_ >= cfg_.lsq_size) continue;
    mem::MemRequest req;
    req.id = id_base_ | e.index;
    req.core = cfg_.id;
    req.addr = e.op.addr;
    req.kind = e.op.type == trace::OpType::kStore ? mem::AccessKind::kWrite
                                                  : mem::AccessKind::kRead;
    req.created = now;
    req.reply_to = this;
    if (!l1_try_access(req)) {
      ++stats_.l1_rejections;
      mem_port_blocked = true;  // further memory issues would also bounce
      continue;
    }
    ++lsq_occupancy_;
    --iw_occupancy_;
    ++issued;
    e.mem_id = req.id;
    // Stores retire at acceptance (store-buffer semantics); loads wait for
    // their data.
    e.state = e.op.type == trace::OpType::kStore ? State::kDone
                                                 : State::kMemWaiting;
  }
}

void OooCore::do_dispatch(Cycle /*now*/) {
  std::uint32_t dispatched = 0;
  while (dispatched < cfg_.dispatch_width && !rob_.full() &&
         iw_occupancy_ < cfg_.iw_size && !trace_done_) {
    if (chunk_pos_ >= chunk_len_ && !refill_trace()) {
      trace_done_ = true;
      break;
    }
    RobEntry e;
    e.op = trace_chunk_[chunk_pos_++];
    e.state = State::kDispatched;
    const std::size_t seq = rob_.push(e);
    rob_.at_seq(seq).index = seq;
    util::require(seq == next_index_, "OooCore: ROB sequence drift");
    ++next_index_;
    ++iw_occupancy_;
    ++dispatched;
  }
}

bool OooCore::finished() const {
  return trace_done_ && rob_.empty() && lsq_occupancy_ == 0;
}

}  // namespace lpm::cpu
