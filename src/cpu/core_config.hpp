// Out-of-order core parameters. issue width / IW size / ROB size are three
// of the six Table-I reconfiguration knobs (the other three live in the
// cache configs).
#pragma once

#include <cstdint>
#include <string>

#include "util/types.hpp"

namespace lpm::cpu {

struct CoreConfig {
  std::string name = "core";
  CoreId id = 0;
  std::uint32_t issue_width = 4;    ///< ops issued to execution per cycle
  std::uint32_t dispatch_width = 4; ///< ops entering the ROB per cycle
  std::uint32_t commit_width = 4;   ///< ops retiring per cycle
  std::uint32_t iw_size = 32;       ///< instruction-window (scheduler) entries
  std::uint32_t rob_size = 32;      ///< reorder-buffer entries
  std::uint32_t lsq_size = 16;      ///< in-flight memory ops

  void validate() const;

  /// A blocking, single-issue configuration: the AMAT-era baseline used by
  /// the AMAT-vs-C-AMAT comparisons.
  [[nodiscard]] static CoreConfig in_order(CoreId id = 0);
};

struct CoreStats {
  /// Exact counter-wise equality (differential testing).
  friend bool operator==(const CoreStats&, const CoreStats&) = default;

  std::uint64_t instructions = 0;
  std::uint64_t mem_ops = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t cycles = 0;             ///< cycles from first tick to drain
  std::uint64_t commit_cycles = 0;      ///< cycles with >= 1 retirement
  std::uint64_t mem_active_cycles = 0;  ///< cycles with >= 1 in-flight access
  std::uint64_t overlap_cycles = 0;     ///< mem-active cycles with a commit
  std::uint64_t data_stall_cycles = 0;  ///< mem-active cycles without a commit
  std::uint64_t head_mem_stall_cycles = 0;  ///< classic: head-of-ROB blocked on memory
  std::uint64_t l1_rejections = 0;      ///< access attempts bounced by L1

  [[nodiscard]] double ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) / static_cast<double>(cycles);
  }
  [[nodiscard]] double cpi() const {
    return instructions == 0
               ? 0.0
               : static_cast<double>(cycles) / static_cast<double>(instructions);
  }
  [[nodiscard]] double fmem() const {
    return instructions == 0
               ? 0.0
               : static_cast<double>(mem_ops) / static_cast<double>(instructions);
  }
  /// overlapRatio_c-m (Eq. 8): computation/memory overlapped cycles over
  /// total memory-active cycles.
  [[nodiscard]] double overlap_ratio() const {
    return mem_active_cycles == 0 ? 0.0
                                  : static_cast<double>(overlap_cycles) /
                                        static_cast<double>(mem_active_cycles);
  }
  /// Data stall time per instruction (cycles), the paper's stall metric.
  [[nodiscard]] double stall_per_instr() const {
    return instructions == 0 ? 0.0
                             : static_cast<double>(data_stall_cycles) /
                                   static_cast<double>(instructions);
  }
};

}  // namespace lpm::cpu
