#include "util/config.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace lpm::util {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

KvConfig KvConfig::from_text(const std::string& text) {
  KvConfig cfg;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    require(eq != std::string::npos,
            "KvConfig: malformed line " + std::to_string(lineno) + ": " + line);
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    require(!key.empty(), "KvConfig: empty key on line " + std::to_string(lineno));
    cfg.set(key, value);
  }
  return cfg;
}

KvConfig KvConfig::from_file(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "KvConfig: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return from_text(ss.str());
}

KvConfig KvConfig::from_args(int argc, const char* const* argv) {
  KvConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      cfg.positional_.push_back(arg);
    } else {
      cfg.set(trim(arg.substr(0, eq)), trim(arg.substr(eq + 1)));
    }
  }
  return cfg;
}

void KvConfig::set(const std::string& key, const std::string& value) {
  entries_[key] = value;
  touched_[key] = false;
}

bool KvConfig::has(const std::string& key) const { return entries_.count(key) > 0; }

std::optional<std::string> KvConfig::get(const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  touched_[key] = true;
  return it->second;
}

std::string KvConfig::get_or(const std::string& key, const std::string& dflt) const {
  return get(key).value_or(dflt);
}

std::int64_t KvConfig::get_int_or(const std::string& key, std::int64_t dflt) const {
  const auto v = get(key);
  if (!v) return dflt;
  try {
    std::size_t pos = 0;
    const std::int64_t out = std::stoll(*v, &pos);
    require(pos == v->size(), "KvConfig: trailing characters in integer for key " + key);
    return out;
  } catch (const std::exception&) {
    throw LpmError("KvConfig: key '" + key + "' is not an integer: " + *v);
  }
}

std::uint64_t KvConfig::get_uint_or(const std::string& key, std::uint64_t dflt) const {
  const std::int64_t v = get_int_or(key, static_cast<std::int64_t>(dflt));
  require(v >= 0, "KvConfig: key '" + key + "' must be non-negative");
  return static_cast<std::uint64_t>(v);
}

double KvConfig::get_double_or(const std::string& key, double dflt) const {
  const auto v = get(key);
  if (!v) return dflt;
  try {
    std::size_t pos = 0;
    const double out = std::stod(*v, &pos);
    require(pos == v->size(), "KvConfig: trailing characters in double for key " + key);
    return out;
  } catch (const std::exception&) {
    throw LpmError("KvConfig: key '" + key + "' is not a number: " + *v);
  }
}

bool KvConfig::get_bool_or(const std::string& key, bool dflt) const {
  const auto v = get(key);
  if (!v) return dflt;
  std::string s = *v;
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  throw LpmError("KvConfig: key '" + key + "' is not a boolean: " + *v);
}

std::vector<std::string> KvConfig::unused_keys() const {
  std::vector<std::string> out;
  for (const auto& [key, used] : touched_) {
    if (!used) out.push_back(key);
  }
  return out;
}

}  // namespace lpm::util
