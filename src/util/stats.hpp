// Streaming statistics and histogram utilities used by every stats block in
// the simulator (cache stats, analyzer counters, benchmark reductions).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace lpm::util {

/// Welford streaming mean/variance with min/max. O(1) space, numerically
/// stable for long simulations.
class StreamingStats {
 public:
  void add(double x);
  void merge(const StreamingStats& other);
  void reset();

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  ///< sample variance (n-1 divisor)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width bucket histogram over [lo, hi) with overflow/underflow bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x, std::uint64_t weight = 1);
  void reset();

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::size_t buckets() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] double bucket_lo(std::size_t i) const;
  [[nodiscard]] double bucket_hi(std::size_t i) const;

  /// Value below which `q` (in [0,1]) of the mass lies, interpolated within
  /// the containing bucket. Under/overflow mass is attributed to the edges.
  [[nodiscard]] double quantile(double q) const;

  /// Multi-line ASCII rendering for logs and benches.
  [[nodiscard]] std::string to_string(std::size_t bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Numerator/denominator pair with safe division; the bread-and-butter shape
/// of simulator metrics (miss rate, APC, overlap ratio, ...).
struct Ratio {
  std::uint64_t num = 0;
  std::uint64_t den = 0;

  void add(std::uint64_t n, std::uint64_t d) {
    num += n;
    den += d;
  }
  [[nodiscard]] double value() const {
    return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
  }
};

/// Relative error |a-b| / max(|b|, eps); used by model-validation tests.
[[nodiscard]] double relative_error(double a, double b, double eps = 1e-12);

/// Arithmetic mean of a vector (0 for empty input).
[[nodiscard]] double mean_of(const std::vector<double>& xs);

/// Harmonic mean of a vector; returns 0 if any element is <= 0 or empty.
[[nodiscard]] double harmonic_mean_of(const std::vector<double>& xs);

/// Geometric mean of a vector of positive values; 0 for empty input.
[[nodiscard]] double geometric_mean_of(const std::vector<double>& xs);

}  // namespace lpm::util
