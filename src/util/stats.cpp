#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace lpm::util {

void StreamingStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void StreamingStats::merge(const StreamingStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  mean_ = (na * mean_ + nb * other.mean_) / nt;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void StreamingStats::reset() { *this = StreamingStats{}; }

double StreamingStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  require(hi > lo, "Histogram: hi must exceed lo");
  require(buckets >= 1, "Histogram: need at least one bucket");
}

void Histogram::add(double x, std::uint64_t weight) {
  total_ += weight;
  if (x < lo_) {
    underflow_ += weight;
    return;
  }
  if (x >= hi_) {
    overflow_ += weight;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  idx = std::min(idx, counts_.size() - 1);  // FP edge guard
  counts_[idx] += weight;
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  underflow_ = overflow_ = total_ = 0;
}

double Histogram::bucket_lo(std::size_t i) const {
  require(i < counts_.size(), "Histogram::bucket_lo: index out of range");
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
  require(i < counts_.size(), "Histogram::bucket_hi: index out of range");
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::quantile(double q) const {
  require(q >= 0.0 && q <= 1.0, "Histogram::quantile: q must be in [0,1]");
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double seen = static_cast<double>(underflow_);
  if (seen >= target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double c = static_cast<double>(counts_[i]);
    if (seen + c >= target && c > 0) {
      const double frac = (target - seen) / c;
      return bucket_lo(i) + frac * width_;
    }
    seen += c;
  }
  return hi_;
}

std::string Histogram::to_string(std::size_t bar_width) const {
  std::ostringstream os;
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(bar_width));
    os << "[" << bucket_lo(i) << ", " << bucket_hi(i) << ") "
       << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  if (underflow_ > 0) os << "underflow: " << underflow_ << "\n";
  if (overflow_ > 0) os << "overflow: " << overflow_ << "\n";
  return os.str();
}

double relative_error(double a, double b, double eps) {
  return std::abs(a - b) / std::max(std::abs(b), eps);
}

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double harmonic_mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) {
    if (x <= 0.0) return 0.0;
    s += 1.0 / x;
  }
  return static_cast<double>(xs.size()) / s;
}

double geometric_mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double logsum = 0.0;
  for (double x : xs) {
    if (x <= 0.0) return 0.0;
    logsum += std::log(x);
  }
  return std::exp(logsum / static_cast<double>(xs.size()));
}

}  // namespace lpm::util
