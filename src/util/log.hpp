// Minimal leveled logger. The simulator is a library; logging defaults to
// warnings-and-above on stderr and can be silenced entirely by tests.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace lpm::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold (process-wide; benches/tests set it once up front).
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void emit(LogLevel level, const std::string& message);
}

/// Streams a message at `level` if enabled. Usage:
///   log_line(LogLevel::kInfo) << "cycles=" << n;
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level), enabled_(level >= log_level()) {}
  ~LogLine() {
    if (enabled_) detail::emit(level_, os_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream os_;
};

inline LogLine log_debug() { return LogLine(LogLevel::kDebug); }
inline LogLine log_info() { return LogLine(LogLevel::kInfo); }
inline LogLine log_warn() { return LogLine(LogLevel::kWarn); }
inline LogLine log_error() { return LogLine(LogLevel::kError); }

}  // namespace lpm::util
