// Minimal leveled logger. The simulator is a library; logging defaults to
// warnings-and-above on stderr and can be silenced entirely by tests.
// Emission is mutex-guarded so concurrent experiment-engine workers never
// interleave partial lines; messages from worker threads carry a "wN" tag.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace lpm::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold (process-wide; benches/tests set it once up front).
LogLevel log_level();
void set_log_level(LogLevel level);

/// Tags every message emitted by the calling thread with "wN" (worker N).
/// The experiment engine sets this in each pool thread; -1 (the default)
/// means an untagged main-thread message.
void set_thread_worker_id(int id);
[[nodiscard]] int thread_worker_id();

namespace detail {
void emit(LogLevel level, const std::string& message);
}

/// Streams a message at `level` if enabled. Usage:
///   log_line(LogLevel::kInfo) << "cycles=" << n;
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level), enabled_(level >= log_level()) {}
  ~LogLine() {
    if (enabled_) detail::emit(level_, os_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream os_;
};

inline LogLine log_debug() { return LogLine(LogLevel::kDebug); }
inline LogLine log_info() { return LogLine(LogLevel::kInfo); }
inline LogLine log_warn() { return LogLine(LogLevel::kWarn); }
inline LogLine log_error() { return LogLine(LogLevel::kError); }

}  // namespace lpm::util
