// Fixed-capacity FIFO ring buffer used for ROB / LSQ / retry queues.
//
// Header-only and index-based: entries are addressed by stable logical
// positions so a core can hold "ROB slot" references while the buffer
// advances.
#pragma once

#include <cstddef>
#include <vector>

#include "util/error.hpp"

namespace lpm::util {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : slots_(capacity), capacity_(capacity) {
    require(capacity >= 1, "RingBuffer: capacity must be >= 1");
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == capacity_; }

  /// Appends at the tail; returns the element's logical sequence number,
  /// which stays valid until the element is popped.
  std::size_t push(T value) {
    require(!full(), "RingBuffer::push on full buffer");
    const std::size_t seq = head_seq_ + size_;
    slots_[seq % capacity_] = std::move(value);
    ++size_;
    return seq;
  }

  /// Oldest element.
  [[nodiscard]] T& front() {
    require(!empty(), "RingBuffer::front on empty buffer");
    return slots_[head_seq_ % capacity_];
  }
  [[nodiscard]] const T& front() const {
    require(!empty(), "RingBuffer::front on empty buffer");
    return slots_[head_seq_ % capacity_];
  }

  /// Removes the oldest element.
  void pop() {
    require(!empty(), "RingBuffer::pop on empty buffer");
    ++head_seq_;
    --size_;
  }

  /// Access by logical sequence number returned from push().
  [[nodiscard]] T& at_seq(std::size_t seq) {
    require(contains_seq(seq), "RingBuffer::at_seq: stale sequence number");
    return slots_[seq % capacity_];
  }
  [[nodiscard]] const T& at_seq(std::size_t seq) const {
    require(contains_seq(seq), "RingBuffer::at_seq: stale sequence number");
    return slots_[seq % capacity_];
  }

  /// i-th element from the front (0 == front).
  [[nodiscard]] T& at_offset(std::size_t i) {
    require(i < size_, "RingBuffer::at_offset: out of range");
    return slots_[(head_seq_ + i) % capacity_];
  }
  [[nodiscard]] const T& at_offset(std::size_t i) const {
    require(i < size_, "RingBuffer::at_offset: out of range");
    return slots_[(head_seq_ + i) % capacity_];
  }

  [[nodiscard]] bool contains_seq(std::size_t seq) const {
    return seq >= head_seq_ && seq < head_seq_ + size_;
  }
  [[nodiscard]] std::size_t head_seq() const { return head_seq_; }

  void clear() {
    head_seq_ += size_;
    size_ = 0;
  }

 private:
  std::vector<T> slots_;
  std::size_t capacity_;
  std::size_t head_seq_ = 0;
  std::size_t size_ = 0;
};

}  // namespace lpm::util
