// Fixed-capacity FIFO ring buffer used for ROB / LSQ / retry queues.
//
// Header-only and index-based: entries are addressed by stable logical
// positions so a core can hold "ROB slot" references while the buffer
// advances.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "util/error.hpp"

namespace lpm::util {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : slots_(round_up_pow2(capacity)),
        capacity_(capacity),
        mask_(slots_.size() - 1) {
    require(capacity >= 1, "RingBuffer: capacity must be >= 1");
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == capacity_; }

  /// Appends at the tail; returns the element's logical sequence number,
  /// which stays valid until the element is popped.
  std::size_t push(T value) {
    require(!full(), "RingBuffer::push on full buffer");
    const std::size_t seq = head_seq_ + size_;
    slots_[seq & mask_] = std::move(value);
    ++size_;
    return seq;
  }

  /// Appends up to `n` elements copied from `src`, bounded by free space;
  /// returns how many were appended. Batch counterpart of push() for
  /// producers that generate in chunks (e.g. TraceSource::fill).
  std::size_t push_bulk(const T* src, std::size_t n) {
    const std::size_t take = std::min(n, capacity_ - size_);
    for (std::size_t i = 0; i < take; ++i) {
      slots_[(head_seq_ + size_) & mask_] = src[i];
      ++size_;
    }
    return take;
  }

  /// Oldest element.
  [[nodiscard]] T& front() {
    require(!empty(), "RingBuffer::front on empty buffer");
    return slots_[head_seq_ & mask_];
  }
  [[nodiscard]] const T& front() const {
    require(!empty(), "RingBuffer::front on empty buffer");
    return slots_[head_seq_ & mask_];
  }

  /// Removes the oldest element.
  void pop() {
    require(!empty(), "RingBuffer::pop on empty buffer");
    ++head_seq_;
    --size_;
  }

  /// Access by logical sequence number returned from push().
  [[nodiscard]] T& at_seq(std::size_t seq) {
    require(contains_seq(seq), "RingBuffer::at_seq: stale sequence number");
    return slots_[seq & mask_];
  }
  [[nodiscard]] const T& at_seq(std::size_t seq) const {
    require(contains_seq(seq), "RingBuffer::at_seq: stale sequence number");
    return slots_[seq & mask_];
  }

  /// i-th element from the front (0 == front).
  [[nodiscard]] T& at_offset(std::size_t i) {
    require(i < size_, "RingBuffer::at_offset: out of range");
    return slots_[(head_seq_ + i) & mask_];
  }
  [[nodiscard]] const T& at_offset(std::size_t i) const {
    require(i < size_, "RingBuffer::at_offset: out of range");
    return slots_[(head_seq_ + i) & mask_];
  }

  [[nodiscard]] bool contains_seq(std::size_t seq) const {
    return seq >= head_seq_ && seq < head_seq_ + size_;
  }
  [[nodiscard]] std::size_t head_seq() const { return head_seq_; }

  void clear() {
    head_seq_ += size_;
    size_ = 0;
  }

 private:
  // Backing storage is rounded up to a power of two so every slot index is
  // a mask instead of an integer division (the ROB scan does this per entry
  // per cycle). capacity_ still enforces the caller's logical bound.
  [[nodiscard]] static std::size_t round_up_pow2(std::size_t v) {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  std::vector<T> slots_;
  std::size_t capacity_;
  std::size_t mask_;
  std::size_t head_seq_ = 0;
  std::size_t size_ = 0;
};

}  // namespace lpm::util
