// ASCII table rendering for bench output. Every bench prints the same rows /
// series the paper reports; this keeps the formatting consistent.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace lpm::util {

/// Formats a double with `precision` decimals (fixed notation).
[[nodiscard]] std::string fmt(double v, int precision = 3);
[[nodiscard]] std::string fmt(std::uint64_t v);

/// Prints the standard bench banner (tool name, paper artefact, notes).
void print_banner(const std::string& bench, const std::string& artefact,
                  const std::string& notes = "");

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  /// Appends one row. Rows shorter than the header are padded with "".
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt(std::uint64_t v);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Renders with column alignment and +---+ separators.
  [[nodiscard]] std::string to_string() const;

  /// Renders as CSV (header + rows), for machine-readable bench output.
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lpm::util
