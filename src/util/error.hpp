// Error handling: a small exception taxonomy plus precondition checks.
//
// Every failure the library can surface is an LpmError carrying an
// ErrorCode, so callers (most importantly the experiment engine's per-job
// SimJobOutcome) can branch on the *kind* of failure without string
// matching:
//
//   ConfigError  — invalid user-supplied configuration; never retryable,
//                  the same inputs will fail the same way forever.
//   SimError     — a simulation violated an internal expectation at run
//                  time (also the classification for injected faults).
//   IoError      — filesystem / stream failures (sinks, journals, traces).
//   TimeoutError — a run exceeded its cycle or wall-clock budget and was
//                  cancelled cooperatively (never by killing a thread).
//
// kCancelled is not thrown by the library itself: the engine uses it to
// mark jobs it never started because a fail-fast batch aborted early.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace lpm::util {

/// Machine-checkable failure kind carried by every LpmError.
enum class ErrorCode {
  kNone = 0,   ///< no error (the default state of a SimJobOutcome)
  kGeneric,    ///< untyped LpmError (legacy throw sites)
  kConfig,     ///< invalid configuration / usage; not retryable
  kSim,        ///< runtime simulation failure (or injected fault)
  kIo,         ///< file / stream failure
  kTimeout,    ///< cooperative cancellation after exceeding a budget
  kCancelled,  ///< never started: a fail-fast batch aborted first
};

[[nodiscard]] constexpr const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNone: return "none";
    case ErrorCode::kGeneric: return "error";
    case ErrorCode::kConfig: return "config";
    case ErrorCode::kSim: return "sim";
    case ErrorCode::kIo: return "io";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kCancelled: return "cancelled";
  }
  return "?";
}

/// Exception thrown for configuration and usage errors across the library.
class LpmError : public std::runtime_error {
 public:
  explicit LpmError(const std::string& what, ErrorCode code = ErrorCode::kGeneric)
      : std::runtime_error(what), code_(code) {}

  [[nodiscard]] ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

class ConfigError : public LpmError {
 public:
  explicit ConfigError(const std::string& what)
      : LpmError(what, ErrorCode::kConfig) {}
};

class SimError : public LpmError {
 public:
  explicit SimError(const std::string& what) : LpmError(what, ErrorCode::kSim) {}
};

class IoError : public LpmError {
 public:
  explicit IoError(const std::string& what) : LpmError(what, ErrorCode::kIo) {}
};

class TimeoutError : public LpmError {
 public:
  explicit TimeoutError(const std::string& what)
      : LpmError(what, ErrorCode::kTimeout) {}
};

/// Re-raises a failure recorded as (code, message) — e.g. when a
/// SimJobOutcome is unwrapped — preserving the concrete exception type so
/// catch(TimeoutError&) style handlers keep working across the store/rethrow
/// boundary.
[[noreturn]] inline void throw_error(ErrorCode code, const std::string& message) {
  switch (code) {
    case ErrorCode::kConfig: throw ConfigError(message);
    case ErrorCode::kSim: throw SimError(message);
    case ErrorCode::kIo: throw IoError(message);
    case ErrorCode::kTimeout: throw TimeoutError(message);
    case ErrorCode::kNone:
    case ErrorCode::kGeneric:
    case ErrorCode::kCancelled: throw LpmError(message, code);
  }
  throw LpmError(message);
}

/// Cold half of require(): builds the decorated message and throws. Kept
/// out of line so the happy path at a call site is a test and a jump.
[[noreturn, gnu::noinline]] inline void raise_requirement(
    const char* message, const std::source_location& loc) {
  throw ConfigError(std::string(loc.file_name()) + ":" +
                    std::to_string(loc.line()) + ": " + message);
}

/// Cold half of the prefixed require() overload: concatenates the prefix
/// and message only once the check has already failed.
[[noreturn, gnu::noinline]] inline void raise_requirement(
    const std::string& prefix, const char* message,
    const std::source_location& loc) {
  throw ConfigError(std::string(loc.file_name()) + ":" +
                    std::to_string(loc.line()) + ": " + prefix + message);
}

/// Throws ConfigError when `cond` is false. Use for validating
/// user-supplied configuration; internal invariants use assert().
///
/// Prefer a string-literal message: this overload defers all string work to
/// the failure path, so checks in per-cycle code are free of allocation.
/// (The std::string overload below materializes its message temporary even
/// on success — fine for construction/validation, not for hot loops.)
inline void require(bool cond, const char* message,
                    std::source_location loc = std::source_location::current()) {
  if (!cond) [[unlikely]] {
    raise_requirement(message, loc);
  }
}

inline void require(bool cond, const std::string& message,
                    std::source_location loc = std::source_location::current()) {
  if (!cond) [[unlikely]] {
    raise_requirement(message.c_str(), loc);
  }
}

/// Prefixed form for named-config validates: `require(ok, cfg.name,
/// ": field must be ...")`. Like the string-literal overload, the success
/// path allocates nothing — the `prefix + message` concatenation happens
/// only in the cold raise path. This is what keeps config validation cheap
/// enough to run per engine job.
inline void require(bool cond, const std::string& prefix, const char* message,
                    std::source_location loc = std::source_location::current()) {
  if (!cond) [[unlikely]] {
    raise_requirement(prefix, message, loc);
  }
}

}  // namespace lpm::util
