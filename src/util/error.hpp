// Error handling helpers: a library exception type plus precondition checks.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace lpm::util {

/// Exception thrown for configuration and usage errors across the library.
class LpmError : public std::runtime_error {
 public:
  explicit LpmError(const std::string& what) : std::runtime_error(what) {}
};

/// Throws LpmError when `cond` is false. Use for validating user-supplied
/// configuration; internal invariants use assert().
inline void require(bool cond, const std::string& message,
                    std::source_location loc = std::source_location::current()) {
  if (!cond) {
    throw LpmError(std::string(loc.file_name()) + ":" +
                   std::to_string(loc.line()) + ": " + message);
  }
}

}  // namespace lpm::util
