#include "util/log.hpp"

#include <atomic>
#include <mutex>

namespace lpm::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
// Serializes emission: a log line from one thread is never interleaved with
// another's. The threshold check stays lock-free in LogLine.
std::mutex g_emit_mutex;
thread_local int t_worker_id = -1;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

void set_thread_worker_id(int id) { t_worker_id = id; }

int thread_worker_id() { return t_worker_id; }

namespace detail {
void emit(LogLevel level, const std::string& message) {
  const std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::cerr << "[lpm " << level_name(level);
  if (t_worker_id >= 0) std::cerr << " w" << t_worker_id;
  std::cerr << "] " << message << "\n";
}
}  // namespace detail

}  // namespace lpm::util
