// Streaming 64-bit content checksum for on-disk trace files (xxh64-style
// mixing: per-word rounds plus a final avalanche). Header-only and
// allocation-free so the trace writer can hash records as they stream out
// and MmapTrace can hash them as they stream back in, without either side
// ever holding the whole file.
//
// Properties the trace layer relies on:
//   - Deterministic across platforms: input bytes are consumed as a little-
//     endian byte stream regardless of host endianness.
//   - `digest()` never returns 0, so 0 can serve as an "unset checksum"
//     sentinel in headers and workload profiles.
//   - `digest()` is non-destructive: it folds any buffered tail into a copy
//     of the state, so callers may checkpoint mid-stream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace lpm::util {

class Checksum64 {
 public:
  explicit Checksum64(std::uint64_t seed = 0) : state_(seed * kPrime2 + kPrime5) {}

  void update(const void* data, std::size_t size) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    total_ += size;
    // Drain a previously buffered partial word first.
    if (tail_len_ != 0) {
      while (tail_len_ < 8 && size != 0) {
        tail_[tail_len_++] = *p++;
        --size;
      }
      if (tail_len_ == 8) {
        mix_word(load_le64(tail_));
        tail_len_ = 0;
      }
    }
    while (size >= 8) {
      mix_word(load_le64(p));
      p += 8;
      size -= 8;
    }
    while (size != 0) {
      tail_[tail_len_++] = *p++;
      --size;
    }
  }

  [[nodiscard]] std::uint64_t digest() const {
    std::uint64_t h = state_;
    for (unsigned i = 0; i < tail_len_; ++i) {
      h = rotl(h ^ (static_cast<std::uint64_t>(tail_[i]) * kPrime5), 11) * kPrime1;
    }
    h ^= total_;
    // Final avalanche (splitmix64-style) so nearby streams land far apart.
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 31;
    // Reserve 0 as the "no checksum" sentinel.
    return h == 0 ? kPrime3 : h;
  }

 private:
  static constexpr std::uint64_t kPrime1 = 0x9e3779b185ebca87ull;
  static constexpr std::uint64_t kPrime2 = 0xc2b2ae3d27d4eb4full;
  static constexpr std::uint64_t kPrime3 = 0x165667b19e3779f9ull;
  static constexpr std::uint64_t kPrime5 = 0x27d4eb2f165667c5ull;

  static std::uint64_t rotl(std::uint64_t v, int r) { return (v << r) | (v >> (64 - r)); }

  static std::uint64_t load_le64(const unsigned char* p) {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
    return v;
  }

  void mix_word(std::uint64_t w) {
    w *= kPrime2;
    w = rotl(w, 31);
    w *= kPrime1;
    state_ = rotl(state_ ^ w, 27) * kPrime1 + kPrime3;
  }

  std::uint64_t state_;
  std::uint64_t total_ = 0;
  unsigned char tail_[8] = {};
  unsigned tail_len_ = 0;
};

}  // namespace lpm::util
