#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <sstream>

namespace lpm::util {

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt(std::uint64_t v) { return std::to_string(v); }

void print_banner(const std::string& bench, const std::string& artefact,
                  const std::string& notes) {
  std::printf("==============================================================\n");
  std::printf("%s\n", bench.c_str());
  std::printf("Reproduces: %s\n", artefact.c_str());
  std::printf("Paper: LPM: Concurrency-driven Layered Performance Matching, ICPP'15\n");
  if (!notes.empty()) std::printf("%s\n", notes.c_str());
  std::printf("==============================================================\n");
}

AsciiTable::AsciiTable(std::vector<std::string> header) : header_(std::move(header)) {}

void AsciiTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::fmt(double v, int precision) { return util::fmt(v, precision); }

std::string AsciiTable::fmt(std::uint64_t v) { return util::fmt(v); }

std::string AsciiTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  const auto rule = [&] {
    os << "+";
    for (auto w : widths) os << std::string(w + 2, '-') << "+";
    os << "\n";
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      os << " " << cell << std::string(widths[c] - cell.size() + 1, ' ') << "|";
    }
    os << "\n";
  };
  rule();
  line(header_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
  return os.str();
}

std::string AsciiTable::to_csv() const {
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ",";
      // Quote cells containing separators.
      if (cells[c].find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (char ch : cells[c]) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cells[c];
      }
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace lpm::util
