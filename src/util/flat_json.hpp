// Minimal parser for *flat* JSON objects — a single `{...}` whose values
// are strings, numbers, booleans or null (no nesting). That is exactly the
// shape of the repo's machine-readable outputs (ResultSink JSON lines,
// bench/perf's BENCH_simulator.json), and keeping the parser this small
// means those files can be read back without a JSON dependency.
//
// Tolerant where it is safe (whitespace, key order, unknown keys), strict
// where it matters (malformed syntax throws util::LpmError rather than
// guessing).
#pragma once

#include <cctype>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace lpm::util {

class FlatJson {
 public:
  /// Parses one flat JSON object. Throws LpmError on malformed input or on
  /// nested containers.
  [[nodiscard]] static FlatJson parse(const std::string& text) {
    FlatJson json;
    std::size_t pos = 0;
    skip_ws(text, pos);
    expect(text, pos, '{');
    skip_ws(text, pos);
    if (pos < text.size() && text[pos] == '}') {
      ++pos;
      return json;
    }
    while (true) {
      skip_ws(text, pos);
      const std::string key = parse_string(text, pos);
      skip_ws(text, pos);
      expect(text, pos, ':');
      skip_ws(text, pos);
      json.values_[key] = parse_value(text, pos);
      skip_ws(text, pos);
      if (pos >= text.size()) throw LpmError("FlatJson: unterminated object");
      if (text[pos] == ',') {
        ++pos;
        continue;
      }
      expect(text, pos, '}');
      break;
    }
    return json;
  }

  [[nodiscard]] bool has(const std::string& key) const {
    return values_.contains(key);
  }
  [[nodiscard]] std::size_t size() const { return values_.size(); }

  /// All keys present, sorted (std::map order) — lets catalogue-style
  /// tests enumerate a frame's vocabulary without knowing it up front.
  [[nodiscard]] std::vector<std::string> keys() const {
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto& [key, value] : values_) out.push_back(key);
    return out;
  }

  [[nodiscard]] std::optional<std::string> get_string(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end() || it->second.kind != Kind::kString) return std::nullopt;
    return it->second.text;
  }

  [[nodiscard]] std::optional<double> get_number(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end() || it->second.kind != Kind::kNumber) return std::nullopt;
    return it->second.number;
  }

  [[nodiscard]] std::optional<bool> get_bool(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end() || it->second.kind != Kind::kBool) return std::nullopt;
    return it->second.boolean;
  }

 private:
  enum class Kind { kString, kNumber, kBool, kNull };
  struct Value {
    Kind kind = Kind::kNull;
    std::string text;
    double number = 0.0;
    bool boolean = false;
  };

  static void skip_ws(const std::string& s, std::size_t& pos) {
    while (pos < s.size() &&
           std::isspace(static_cast<unsigned char>(s[pos])) != 0) {
      ++pos;
    }
  }

  static void expect(const std::string& s, std::size_t& pos, char c) {
    if (pos >= s.size() || s[pos] != c) {
      throw LpmError(std::string("FlatJson: expected '") + c + "' at offset " +
                     std::to_string(pos));
    }
    ++pos;
  }

  static std::string parse_string(const std::string& s, std::size_t& pos) {
    expect(s, pos, '"');
    std::string out;
    while (pos < s.size() && s[pos] != '"') {
      char c = s[pos++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= s.size()) break;
      const char esc = s[pos++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos + 4 > s.size()) throw LpmError("FlatJson: truncated \\u escape");
          const unsigned code =
              static_cast<unsigned>(std::stoul(s.substr(pos, 4), nullptr, 16));
          pos += 4;
          // Our writers only escape control characters; anything else in
          // the BMP is emitted raw, so a plain truncation to char suffices.
          out += static_cast<char>(code);
          break;
        }
        default: throw LpmError("FlatJson: unknown escape");
      }
    }
    expect(s, pos, '"');
    return out;
  }

  static Value parse_value(const std::string& s, std::size_t& pos) {
    Value v;
    if (pos >= s.size()) throw LpmError("FlatJson: missing value");
    const char c = s[pos];
    if (c == '"') {
      v.kind = Kind::kString;
      v.text = parse_string(s, pos);
      return v;
    }
    if (c == '{' || c == '[') {
      throw LpmError("FlatJson: nested containers are not supported");
    }
    if (s.compare(pos, 4, "true") == 0) {
      v.kind = Kind::kBool;
      v.boolean = true;
      pos += 4;
      return v;
    }
    if (s.compare(pos, 5, "false") == 0) {
      v.kind = Kind::kBool;
      v.boolean = false;
      pos += 5;
      return v;
    }
    if (s.compare(pos, 4, "null") == 0) {
      v.kind = Kind::kNull;
      pos += 4;
      return v;
    }
    std::size_t end = pos;
    while (end < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[end])) != 0 ||
            s[end] == '-' || s[end] == '+' || s[end] == '.' || s[end] == 'e' ||
            s[end] == 'E')) {
      ++end;
    }
    if (end == pos) throw LpmError("FlatJson: unrecognised value");
    try {
      v.number = std::stod(s.substr(pos, end - pos));
    } catch (const std::exception&) {
      throw LpmError("FlatJson: bad number literal");
    }
    v.kind = Kind::kNumber;
    pos = end;
    return v;
  }

  std::map<std::string, Value> values_;
};

}  // namespace lpm::util
