#include "util/fingerprint.hpp"

#include <cstdio>

#include "cpu/core_config.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "sim/machine_config.hpp"
#include "trace/workload_profile.hpp"

namespace lpm::util {

namespace {

void mix_core(Fingerprint& f, const cpu::CoreConfig& c) {
  f.mix("CoreConfig/v1")
      .mix(c.name)
      .mix(c.id)
      .mix(c.issue_width)
      .mix(c.dispatch_width)
      .mix(c.commit_width)
      .mix(c.iw_size)
      .mix(c.rob_size)
      .mix(c.lsq_size);
}

void mix_cache(Fingerprint& f, const mem::CacheConfig& c) {
  f.mix("CacheConfig/v1")
      .mix(c.name)
      .mix(c.size_bytes)
      .mix(c.block_bytes)
      .mix(c.associativity)
      .mix(c.hit_latency)
      .mix(c.ports)
      .mix(c.banks)
      .mix(c.interleave_bytes)
      .mix(c.mshr_entries)
      .mix(c.mshr_targets)
      .mix(c.writeback_capacity)
      .mix(c.prefetch_degree)
      .mix(c.prefetch_accuracy_window)
      .mix(c.mshr_quota_per_core)
      .mix(c.replacement)
      .mix(c.num_cores)
      .mix(c.seed);
}

void mix_dram(Fingerprint& f, const mem::DramConfig& c) {
  f.mix("DramConfig/v1")
      .mix(c.name)
      .mix(c.banks)
      .mix(c.row_bytes)
      .mix(c.interleave_bytes)
      .mix(c.t_rcd)
      .mix(c.t_cl)
      .mix(c.t_rp)
      .mix(c.t_burst)
      .mix(c.frontend_latency)
      .mix(c.queue_capacity)
      .mix(c.max_issue_per_cycle)
      .mix(c.starvation_threshold);
}

}  // namespace

std::uint64_t fingerprint(const cpu::CoreConfig& cfg) {
  Fingerprint f;
  mix_core(f, cfg);
  return f.value();
}

std::uint64_t fingerprint(const mem::CacheConfig& cfg) {
  Fingerprint f;
  mix_cache(f, cfg);
  return f.value();
}

std::uint64_t fingerprint(const mem::DramConfig& cfg) {
  Fingerprint f;
  mix_dram(f, cfg);
  return f.value();
}

std::uint64_t fingerprint(const sim::MachineConfig& cfg) {
  Fingerprint f;
  f.mix("MachineConfig/v1").mix(cfg.num_cores);
  mix_core(f, cfg.core);
  mix_cache(f, cfg.l1);
  mix_cache(f, cfg.l2);
  mix_dram(f, cfg.dram);
  f.mix(cfg.use_private_l2);
  mix_cache(f, cfg.private_l2);
  f.mix(cfg.l1_size_per_core.size());
  for (const std::uint64_t s : cfg.l1_size_per_core) f.mix(s);
  f.mix(cfg.max_cycles);
  return f.value();
}

std::uint64_t fingerprint(const trace::WorkloadProfile& wl) {
  Fingerprint f;
  if (wl.file_backed()) {
    // A recorded trace IS its content: fold in the stream checksum, never
    // the path or display name, so renaming/moving a file (or recording the
    // same stream twice) hits the same memo-cache and shard-routing keys,
    // while any content change misses them.
    f.mix("WorkloadProfile/file/v1").mix(wl.trace_checksum);
    return f.value();
  }
  f.mix("WorkloadProfile/v1")
      .mix(wl.name)
      .mix(wl.fmem)
      .mix(wl.store_fraction)
      .mix(wl.alu_latency)
      .mix(wl.alu_dep_fraction)
      .mix(wl.working_set_bytes)
      .mix(wl.zipf_skew)
      .mix(wl.seq_fraction)
      .mix(wl.num_streams)
      .mix(wl.stride_bytes)
      .mix(wl.pointer_chase_fraction)
      .mix(wl.load_use_fraction)
      .mix(wl.phase_length)
      .mix(wl.burst_duty)
      .mix(wl.burst_fmem)
      .mix(wl.burst_seq_fraction)
      .mix(wl.length)
      .mix(wl.seed)
      .mix(wl.addr_base);
  return f.value();
}

std::string fingerprint_hex(std::uint64_t fp) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(fp));
  return std::string(buf);
}

}  // namespace lpm::util
