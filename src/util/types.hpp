// Fundamental scalar types shared across the LPM libraries.
#pragma once

#include <cstdint>

namespace lpm {

/// Simulation time in core clock cycles.
using Cycle = std::uint64_t;

/// Byte address in the simulated physical address space.
using Addr = std::uint64_t;

/// Monotonically increasing identifier for in-flight memory requests.
using RequestId = std::uint64_t;

/// Core index within a chip multiprocessor.
using CoreId = std::uint32_t;

/// Sentinel for "no cycle" / "not yet scheduled".
inline constexpr Cycle kNoCycle = ~Cycle{0};

/// Sentinel for invalid request ids.
inline constexpr RequestId kNoRequest = ~RequestId{0};

/// Sentinel for "no core" (e.g. aggregate counters).
inline constexpr CoreId kNoCore = ~CoreId{0};

}  // namespace lpm
