// Deterministic pseudo-random number generation for workload synthesis.
//
// The simulator must be reproducible: every stochastic choice flows through
// an explicitly seeded Rng. We use xoshiro256** (Blackman & Vigna), which is
// fast, has a 2^256-1 period, and passes BigCrush; std::mt19937_64 would work
// too but is slower and its distributions are not portable across standard
// library implementations. All distributions here are hand-rolled so results
// are bit-identical on every platform.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace lpm::util {

/// xoshiro256** seeded via splitmix64. Copyable (cheap state) so generators
/// can fork independent streams deterministically.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes the state from a 64-bit seed via splitmix64.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0. Uses rejection sampling to
  /// avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool next_bool(double p);

  /// Geometric distribution: number of failures before first success,
  /// success probability p in (0, 1].
  std::uint64_t next_geometric(double p);

  /// Exponential with rate lambda > 0.
  double next_exponential(double lambda);

  /// Standard normal via Box-Muller (no cached spare: keeps state small).
  double next_normal(double mean = 0.0, double stddev = 1.0);

  /// Forks an independent stream: hashes this stream's next output with the
  /// given tag so sibling streams do not correlate.
  Rng fork(std::uint64_t tag);

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// Zipf(N, s) sampler over {0, .., n-1} using precomputed CDF + binary
/// search. Heavy ranks are the *low* indices, matching the usual convention
/// for modelling temporal locality (rank-0 block is the hottest).
class ZipfSampler {
 public:
  /// n must be >= 1; s >= 0 (s == 0 degenerates to uniform).
  ZipfSampler(std::size_t n, double s);

  [[nodiscard]] std::size_t sample(Rng& rng) const;
  [[nodiscard]] std::size_t size() const { return cdf_.size(); }
  [[nodiscard]] double skew() const { return s_; }

 private:
  std::vector<double> cdf_;
  double s_;
};

/// Samples an index from a discrete distribution given by non-negative
/// weights (need not be normalized). Precomputes a CDF.
class DiscreteSampler {
 public:
  explicit DiscreteSampler(const std::vector<double>& weights);

  [[nodiscard]] std::size_t sample(Rng& rng) const;
  [[nodiscard]] std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace lpm::util
