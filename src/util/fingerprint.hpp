// Stable FNV-1a fingerprinting of the simulator's configuration structs.
//
// A fingerprint is the cache key of the experiment engine: two jobs with the
// same (MachineConfig, WorkloadProfile) fingerprint are the same simulation
// and may share a memoized result. The hash therefore covers *every* field
// of every config struct — over-inclusion only costs a spurious re-run,
// while omission would silently alias distinct experiments. Each struct
// hash starts from a versioned type tag so values are stable within a
// build but never collide across struct kinds.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <type_traits>

namespace lpm::cpu {
struct CoreConfig;
}
namespace lpm::mem {
struct CacheConfig;
struct DramConfig;
}
namespace lpm::sim {
struct MachineConfig;
}
namespace lpm::trace {
struct WorkloadProfile;
}

namespace lpm::util {

/// Incremental 64-bit FNV-1a hasher. Integers are mixed as 8 little-endian
/// bytes (so the value, not the in-memory width, determines the hash);
/// doubles by bit pattern; strings length-prefixed.
class Fingerprint {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t kPrime = 0x00000100000001b3ull;

  Fingerprint& mix_byte(std::uint8_t b) {
    hash_ = (hash_ ^ b) * kPrime;
    return *this;
  }

  Fingerprint& mix_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      mix_byte(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    return *this;
  }

  template <typename T>
    requires(std::is_integral_v<T> || std::is_enum_v<T>)
  Fingerprint& mix(T v) {
    return mix_u64(static_cast<std::uint64_t>(v));
  }

  Fingerprint& mix(double v) { return mix_u64(std::bit_cast<std::uint64_t>(v)); }

  Fingerprint& mix(const std::string& s) {
    mix_u64(s.size());
    for (const char c : s) mix_byte(static_cast<std::uint8_t>(c));
    return *this;
  }

  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = kOffsetBasis;
};

/// Field-complete hashes of the configuration structs (see header comment).
[[nodiscard]] std::uint64_t fingerprint(const cpu::CoreConfig& cfg);
[[nodiscard]] std::uint64_t fingerprint(const mem::CacheConfig& cfg);
[[nodiscard]] std::uint64_t fingerprint(const mem::DramConfig& cfg);
[[nodiscard]] std::uint64_t fingerprint(const sim::MachineConfig& cfg);
[[nodiscard]] std::uint64_t fingerprint(const trace::WorkloadProfile& wl);

/// Hex rendering for logs / result-sink records.
[[nodiscard]] std::string fingerprint_hex(std::uint64_t fp);

}  // namespace lpm::util
