// Stable 64-bit fingerprinting of the simulator's configuration structs.
//
// A fingerprint is the cache key of the experiment engine: two jobs with the
// same (MachineConfig, WorkloadProfile) fingerprint are the same simulation
// and may share a memoized result. The hash therefore covers *every* field
// of every config struct — over-inclusion only costs a spurious re-run,
// while omission would silently alias distinct experiments. Each struct
// hash starts from a versioned type tag so values are stable within a
// build but never collide across struct kinds. Fingerprints are not a
// cross-build serialization format: a journal written by another build
// simply fails to match and re-runs its points, which is the safe
// direction.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>

namespace lpm::cpu {
struct CoreConfig;
}
namespace lpm::mem {
struct CacheConfig;
struct DramConfig;
}
namespace lpm::sim {
struct MachineConfig;
}
namespace lpm::trace {
struct WorkloadProfile;
}

namespace lpm::util {

/// Incremental 64-bit block hasher. Each 64-bit operand is first diffused
/// by the splitmix64 finalizer — a bijective permutation independent of the
/// running hash, so it pipelines across consecutive fields — then folded
/// into an FNV-1a-shaped xor-and-multiply chain. That keeps the serial
/// dependency chain at one multiply per field; the old byte-at-a-time
/// FNV-1a paid eight, which made fingerprinting the dominant cost of an
/// engine submission. Integers are mixed by value (so the value, not the
/// in-memory width, determines the hash); doubles by bit pattern; strings
/// length-prefixed in little-endian 64-bit blocks.
class Fingerprint {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t kPrime = 0x00000100000001b3ull;

  Fingerprint& mix_byte(std::uint8_t b) {
    hash_ = (hash_ ^ b) * kPrime;
    return *this;
  }

  Fingerprint& mix_u64(std::uint64_t v) {
    // splitmix64 finalizer (Steele et al.): bijective, so distinct
    // operands stay distinct going into the chain.
    v ^= v >> 30;
    v *= 0xbf58476d1ce4e5b9ull;
    v ^= v >> 27;
    v *= 0x94d049bb133111ebull;
    v ^= v >> 31;
    hash_ = (hash_ ^ v) * kPrime;
    return *this;
  }

  template <typename T>
    requires(std::is_integral_v<T> || std::is_enum_v<T>)
  Fingerprint& mix(T v) {
    return mix_u64(static_cast<std::uint64_t>(v));
  }

  Fingerprint& mix(double v) { return mix_u64(std::bit_cast<std::uint64_t>(v)); }

  Fingerprint& mix(std::string_view s) {
    mix_u64(s.size());
    std::size_t i = 0;
    for (; i + 8 <= s.size(); i += 8) mix_u64(load_le(s.data() + i, 8));
    if (i < s.size()) mix_u64(load_le(s.data() + i, s.size() - i));
    return *this;
  }

  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  /// Little-endian pack of up to 8 bytes, zero-padded; the length prefix
  /// in mix() keeps padded tails from aliasing longer strings.
  [[nodiscard]] static std::uint64_t load_le(const char* p, std::size_t n) {
    std::uint64_t v = 0;
    for (std::size_t b = 0; b < n; ++b) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(p[b]))
           << (8 * b);
    }
    return v;
  }

  std::uint64_t hash_ = kOffsetBasis;
};

/// Field-complete hashes of the configuration structs (see header comment).
[[nodiscard]] std::uint64_t fingerprint(const cpu::CoreConfig& cfg);
[[nodiscard]] std::uint64_t fingerprint(const mem::CacheConfig& cfg);
[[nodiscard]] std::uint64_t fingerprint(const mem::DramConfig& cfg);
[[nodiscard]] std::uint64_t fingerprint(const sim::MachineConfig& cfg);
[[nodiscard]] std::uint64_t fingerprint(const trace::WorkloadProfile& wl);

/// Hex rendering for logs / result-sink records.
[[nodiscard]] std::string fingerprint_hex(std::uint64_t fp);

}  // namespace lpm::util
