// Minimal key=value configuration store with typed, validated accessors.
//
// Used by examples and benches to override simulator parameters from the
// command line ("key=value" arguments) or from simple config files. Keys are
// case-sensitive; '#' starts a comment; blank lines ignored.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace lpm::util {

class KvConfig {
 public:
  KvConfig() = default;

  /// Parses "key=value" lines from text. Throws LpmError on malformed lines.
  static KvConfig from_text(const std::string& text);

  /// Loads a config file. Throws LpmError if unreadable.
  static KvConfig from_file(const std::string& path);

  /// Parses command-line style args; non "k=v" tokens are collected as
  /// positional arguments.
  static KvConfig from_args(int argc, const char* const* argv);

  void set(const std::string& key, const std::string& value);
  [[nodiscard]] bool has(const std::string& key) const;

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  [[nodiscard]] std::string get_or(const std::string& key, const std::string& dflt) const;
  [[nodiscard]] std::int64_t get_int_or(const std::string& key, std::int64_t dflt) const;
  [[nodiscard]] std::uint64_t get_uint_or(const std::string& key, std::uint64_t dflt) const;
  [[nodiscard]] double get_double_or(const std::string& key, double dflt) const;
  [[nodiscard]] bool get_bool_or(const std::string& key, bool dflt) const;

  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }
  [[nodiscard]] const std::map<std::string, std::string>& entries() const { return entries_; }

  /// Keys that were set but never read; lets tools warn about typos.
  [[nodiscard]] std::vector<std::string> unused_keys() const;

 private:
  std::map<std::string, std::string> entries_;
  std::vector<std::string> positional_;
  mutable std::map<std::string, bool> touched_;
};

}  // namespace lpm::util
