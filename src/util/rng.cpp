#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace lpm::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& word : s_) {
    word = splitmix64(x);
  }
  // All-zero state is the one invalid state for xoshiro; splitmix64 cannot
  // produce four zero outputs in a row, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 1;
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  require(bound > 0, "Rng::next_below: bound must be positive");
  // Lemire-style rejection: accept unless in the biased tail.
  const std::uint64_t threshold = (~bound + 1) % bound;  // (2^64 - bound) mod bound
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

std::uint64_t Rng::next_in(std::uint64_t lo, std::uint64_t hi) {
  require(lo <= hi, "Rng::next_in: lo must be <= hi");
  const std::uint64_t span = hi - lo;
  if (span == ~std::uint64_t{0}) {
    return next_u64();
  }
  return lo + next_below(span + 1);
}

double Rng::next_double() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

std::uint64_t Rng::next_geometric(double p) {
  require(p > 0.0 && p <= 1.0, "Rng::next_geometric: p must be in (0, 1]");
  if (p == 1.0) return 0;
  const double u = next_double();
  // Inverse CDF; u in [0,1) keeps log argument positive.
  return static_cast<std::uint64_t>(std::floor(std::log1p(-u) / std::log1p(-p)));
}

double Rng::next_exponential(double lambda) {
  require(lambda > 0.0, "Rng::next_exponential: lambda must be positive");
  const double u = next_double();
  return -std::log1p(-u) / lambda;
}

double Rng::next_normal(double mean, double stddev) {
  // Box-Muller; discard the second variate for stateless simplicity.
  double u1 = next_double();
  const double u2 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;  // avoid log(0)
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

Rng Rng::fork(std::uint64_t tag) {
  return Rng(next_u64() ^ (tag * 0x9e3779b97f4a7c15ULL) ^ 0xd1b54a32d192ed03ULL);
}

ZipfSampler::ZipfSampler(std::size_t n, double s) : s_(s) {
  require(n >= 1, "ZipfSampler: n must be >= 1");
  require(s >= 0.0, "ZipfSampler: skew must be non-negative");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (auto& c : cdf_) {
    c /= acc;
  }
  cdf_.back() = 1.0;  // guard against FP round-down
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  // First index whose CDF value exceeds u.
  std::size_t lo = 0;
  std::size_t hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] <= u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

DiscreteSampler::DiscreteSampler(const std::vector<double>& weights) {
  require(!weights.empty(), "DiscreteSampler: weights must be non-empty");
  cdf_.resize(weights.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    require(weights[i] >= 0.0, "DiscreteSampler: weights must be non-negative");
    acc += weights[i];
    cdf_[i] = acc;
  }
  require(acc > 0.0, "DiscreteSampler: weights must not all be zero");
  for (auto& c : cdf_) {
    c /= acc;
  }
  cdf_.back() = 1.0;
}

std::size_t DiscreteSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  std::size_t lo = 0;
  std::size_t hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] <= u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace lpm::util
