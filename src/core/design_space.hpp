// Case Study I substrate: the reconfigurable-architecture design space.
//
// Six knobs (Table I): pipeline issue width, instruction-window size, ROB
// size, L1 port count, MSHR entries, and L2 interleaving (banks). With ten
// levels per knob the space holds 10^6 configurations - far too many to
// search exhaustively, which is exactly the paper's argument for letting the
// LPM algorithm steer the walk.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/lpm_algorithm.hpp"
#include "exp/experiment_engine.hpp"
#include "sim/machine_config.hpp"
#include "trace/workload_profile.hpp"

namespace lpm::core {

struct ArchKnobs {
  std::uint32_t issue_width = 4;
  std::uint32_t iw_size = 32;
  std::uint32_t rob_size = 32;
  std::uint32_t l1_ports = 1;
  std::uint32_t mshr_entries = 4;
  std::uint32_t l2_interleave = 4;

  /// Applies the knobs onto a base machine (issue/dispatch/commit widths
  /// move together; L1 MSHRs get the knob, L2 MSHRs scale with it).
  [[nodiscard]] sim::MachineConfig apply(sim::MachineConfig base) const;

  /// Relative silicon cost in arbitrary units; drives over-provision
  /// trimming (cheaper config preferred among those meeting the target).
  [[nodiscard]] double hardware_cost() const;

  [[nodiscard]] std::string label() const;
  [[nodiscard]] bool operator==(const ArchKnobs&) const = default;
  [[nodiscard]] auto operator<=>(const ArchKnobs&) const = default;

  // Table I columns.
  [[nodiscard]] static ArchKnobs config_a();
  [[nodiscard]] static ArchKnobs config_b();
  [[nodiscard]] static ArchKnobs config_c();
  [[nodiscard]] static ArchKnobs config_d();
  [[nodiscard]] static ArchKnobs config_e();
};

/// Allowed values per knob (ten levels each, Table-I values included).
struct KnobLevels {
  std::vector<std::uint32_t> issue_width;
  std::vector<std::uint32_t> iw_size;
  std::vector<std::uint32_t> rob_size;
  std::vector<std::uint32_t> l1_ports;
  std::vector<std::uint32_t> mshr_entries;
  std::vector<std::uint32_t> l2_interleave;

  [[nodiscard]] static KnobLevels standard();
  [[nodiscard]] std::uint64_t space_size() const;
};

/// Runs the workload on a knob configuration and returns its measurement.
/// All simulations go through the experiment engine (parallel + memoized);
/// derived LPM measurements are additionally memoized per configuration.
/// The unit the LPM algorithm drives in Case Study I.
class DesignSpaceExplorer final : public LpmTunable {
 public:
  /// `engine` = nullptr uses the process-wide shared engine.
  DesignSpaceExplorer(sim::MachineConfig base, trace::WorkloadProfile workload,
                      KnobLevels levels, ArchKnobs start,
                      double delta_percent = kFineGrainedDelta,
                      exp::ExperimentEngine* engine = nullptr);

  // --- LpmTunable ---
  LpmObservation measure() override;
  bool optimize_l1() override;
  bool optimize_l2() override;
  bool reduce_overprovision() override;
  /// Batches the speculative step-up frontier (every knob one level up)
  /// through the engine so the threshold loop's next measurements are
  /// already simulating concurrently. No-op on a single-threaded engine,
  /// where speculation would only add serial work.
  void prefetch_candidates() override;

  [[nodiscard]] const ArchKnobs& current() const { return knobs_; }
  void set_delta_percent(double delta) { delta_percent_ = delta; }
  [[nodiscard]] double delta_percent() const { return delta_percent_; }

  /// Evaluates an arbitrary configuration (memoized); used by the Table-I
  /// bench to print the fixed A-E columns.
  [[nodiscard]] const AppMeasurement& evaluate(const ArchKnobs& knobs);

  /// Submits every not-yet-memoized configuration in `batch` to the engine
  /// as one concurrent batch. Subsequent evaluate()/measure() calls on
  /// these configurations are cache-served. Runs collect-and-continue: a
  /// failing point is logged and left unmemoized instead of aborting the
  /// batch (on-path evaluations stay fail-fast; see evaluate_full).
  void evaluate_batch(const std::vector<ArchKnobs>& batch);

  /// Configurations simulated so far (cache size = distinct configs).
  [[nodiscard]] std::size_t configs_evaluated() const { return memo_.size(); }
  /// Reconfiguration operations applied (paper: 4 cycles each).
  [[nodiscard]] std::uint64_t reconfigurations() const { return reconfig_ops_; }
  [[nodiscard]] std::uint64_t reconfiguration_cost_cycles() const {
    return reconfig_ops_ * kReconfigCostCycles;
  }

  static constexpr std::uint64_t kReconfigCostCycles = 4;

 private:
  struct Evaluation {
    AppMeasurement measurement;
    std::uint64_t l1_rejections = 0;
    std::uint64_t l1_mshr_wait_cycles = 0;
    std::uint64_t l1_misses = 0;
  };

  const Evaluation& evaluate_full(const ArchKnobs& knobs);
  [[nodiscard]] LpmObservation observe(const ArchKnobs& knobs);
  [[nodiscard]] exp::ExperimentEngine& engine() const;
  [[nodiscard]] exp::SimJob make_job(const ArchKnobs& knobs) const;
  [[nodiscard]] Evaluation to_evaluation(const exp::SimJobResult& result) const;
  /// Next level above `value` in `levels` (returns value if already max).
  [[nodiscard]] static std::uint32_t step_up(const std::vector<std::uint32_t>& levels,
                                             std::uint32_t value);
  [[nodiscard]] static std::uint32_t step_down(const std::vector<std::uint32_t>& levels,
                                               std::uint32_t value);
  void apply_knobs(const ArchKnobs& next);

  sim::MachineConfig base_;
  trace::WorkloadProfile workload_;
  KnobLevels levels_;
  ArchKnobs knobs_;
  double delta_percent_;
  exp::ExperimentEngine* engine_;  ///< non-owning; nullptr = shared engine
  std::map<ArchKnobs, Evaluation> memo_;
  std::uint64_t reconfig_ops_ = 0;
};

}  // namespace lpm::core
