// Case Study I substrate: the reconfigurable-architecture design space.
//
// Six knobs (Table I): pipeline issue width, instruction-window size, ROB
// size, L1 port count, MSHR entries, and L2 interleaving (banks). With ten
// levels per knob the space holds 10^6 configurations - far too many to
// search exhaustively, which is exactly the paper's argument for letting the
// LPM algorithm steer the walk.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/lpm_algorithm.hpp"
#include "exp/experiment_engine.hpp"
#include "model/backend.hpp"
#include "sim/machine_config.hpp"
#include "trace/workload_profile.hpp"

namespace lpm::core {

struct ArchKnobs {
  std::uint32_t issue_width = 4;
  std::uint32_t iw_size = 32;
  std::uint32_t rob_size = 32;
  std::uint32_t l1_ports = 1;
  std::uint32_t mshr_entries = 4;
  std::uint32_t l2_interleave = 4;

  /// Applies the knobs onto a base machine (issue/dispatch/commit widths
  /// move together; L1 MSHRs get the knob, L2 MSHRs scale with it).
  [[nodiscard]] sim::MachineConfig apply(sim::MachineConfig base) const;

  /// Relative silicon cost in arbitrary units; drives over-provision
  /// trimming (cheaper config preferred among those meeting the target).
  [[nodiscard]] double hardware_cost() const;

  [[nodiscard]] std::string label() const;
  [[nodiscard]] bool operator==(const ArchKnobs&) const = default;
  [[nodiscard]] auto operator<=>(const ArchKnobs&) const = default;

  // Table I columns.
  [[nodiscard]] static ArchKnobs config_a();
  [[nodiscard]] static ArchKnobs config_b();
  [[nodiscard]] static ArchKnobs config_c();
  [[nodiscard]] static ArchKnobs config_d();
  [[nodiscard]] static ArchKnobs config_e();
};

/// Allowed values per knob (ten levels each, Table-I values included).
struct KnobLevels {
  std::vector<std::uint32_t> issue_width;
  std::vector<std::uint32_t> iw_size;
  std::vector<std::uint32_t> rob_size;
  std::vector<std::uint32_t> l1_ports;
  std::vector<std::uint32_t> mshr_entries;
  std::vector<std::uint32_t> l2_interleave;

  [[nodiscard]] static KnobLevels standard();
  [[nodiscard]] std::uint64_t space_size() const;
};

/// Runs the workload on a knob configuration and returns its measurement.
/// All evaluations go through the experiment engine (parallel + memoized)
/// as backend-tagged jobs; derived model::LayerEstimates are additionally
/// memoized per configuration. The unit the LPM algorithm drives in Case
/// Study I, at either fidelity: `backend` picks the evaluating model
/// ("cycle" = sim::System, "rdh"/"fa" = the analytic fast paths).
class DesignSpaceExplorer final : public LpmTunable {
 public:
  /// `engine` = nullptr uses the process-wide shared engine.
  DesignSpaceExplorer(sim::MachineConfig base, trace::WorkloadProfile workload,
                      KnobLevels levels, ArchKnobs start,
                      double delta_percent = kFineGrainedDelta,
                      exp::ExperimentEngine* engine = nullptr,
                      std::string backend = exp::kCycleBackend);

  // --- LpmTunable ---
  LpmObservation measure() override;
  bool optimize_l1() override;
  bool optimize_l2() override;
  bool reduce_overprovision() override;
  /// Batches the speculative step-up frontier (every knob one level up)
  /// through the engine so the threshold loop's next measurements are
  /// already simulating concurrently. No-op on a single-threaded engine,
  /// where speculation would only add serial work.
  void prefetch_candidates() override;

  [[nodiscard]] const ArchKnobs& current() const { return knobs_; }
  void set_delta_percent(double delta) { delta_percent_ = delta; }
  [[nodiscard]] double delta_percent() const { return delta_percent_; }
  /// The model backend evaluating this explorer's points.
  [[nodiscard]] const std::string& backend() const { return backend_; }

  /// Evaluates an arbitrary configuration (memoized); used by the Table-I
  /// bench to print the fixed A-E columns.
  [[nodiscard]] const AppMeasurement& evaluate(const ArchKnobs& knobs);
  /// The full fidelity-tagged estimate of a configuration (memoized).
  [[nodiscard]] const model::LayerEstimates& estimate(const ArchKnobs& knobs);

  /// Configurations to batch-submit on the next prefetch_candidates()
  /// call (consumed once). The screen-then-confirm walk passes the
  /// screening trajectory here so the confirm walk's simulations start
  /// concurrently up front; purely a throughput hint — failed or unused
  /// hints never affect the walk.
  void set_prefetch_hints(std::vector<ArchKnobs> hints);
  /// Disables the speculative step-up frontier in prefetch_candidates()
  /// (prefetch hints still fire). The confirm stage turns speculation off:
  /// the screening trajectory already covers the likely path.
  void set_speculation(bool on) { speculate_ = on; }
  /// Every configuration this explorer evaluated, in first-evaluation
  /// order (on-path and batched alike) — the screening trajectory handed
  /// to the confirm stage.
  [[nodiscard]] const std::vector<ArchKnobs>& visited() const {
    return visited_;
  }

  /// Submits every not-yet-memoized configuration in `batch` to the engine
  /// as one concurrent batch. Subsequent evaluate()/measure() calls on
  /// these configurations are cache-served. Runs collect-and-continue: a
  /// failing point is logged and left unmemoized instead of aborting the
  /// batch (on-path evaluations stay fail-fast; see evaluate_full).
  void evaluate_batch(const std::vector<ArchKnobs>& batch);

  /// Configurations simulated so far (cache size = distinct configs).
  [[nodiscard]] std::size_t configs_evaluated() const { return memo_.size(); }
  /// Reconfiguration operations applied (paper: 4 cycles each).
  [[nodiscard]] std::uint64_t reconfigurations() const { return reconfig_ops_; }
  [[nodiscard]] std::uint64_t reconfiguration_cost_cycles() const {
    return reconfig_ops_ * kReconfigCostCycles;
  }

  static constexpr std::uint64_t kReconfigCostCycles = 4;

 private:
  const model::LayerEstimates& evaluate_full(const ArchKnobs& knobs);
  [[nodiscard]] LpmObservation observe(const ArchKnobs& knobs);
  [[nodiscard]] exp::ExperimentEngine& engine() const;
  [[nodiscard]] exp::SimJob make_job(const ArchKnobs& knobs) const;
  const model::LayerEstimates& memoize(const ArchKnobs& knobs,
                                       const exp::SimJob& job,
                                       exp::SimResultPtr result);
  /// Next level above `value` in `levels` (returns value if already max).
  [[nodiscard]] static std::uint32_t step_up(const std::vector<std::uint32_t>& levels,
                                             std::uint32_t value);
  [[nodiscard]] static std::uint32_t step_down(const std::vector<std::uint32_t>& levels,
                                               std::uint32_t value);
  void apply_knobs(const ArchKnobs& next);

  sim::MachineConfig base_;
  trace::WorkloadProfile workload_;
  KnobLevels levels_;
  ArchKnobs knobs_;
  double delta_percent_;
  exp::ExperimentEngine* engine_;  ///< non-owning; nullptr = shared engine
  std::string backend_;
  std::map<ArchKnobs, model::LayerEstimates> memo_;
  std::vector<ArchKnobs> visited_;
  std::vector<ArchKnobs> hints_;
  bool speculate_ = true;
  std::uint64_t reconfig_ops_ = 0;
};

/// Screen-then-confirm over an explicit candidate set: rank all candidates
/// with a cheap analytic backend, then re-evaluate only the surviving
/// frontier cycle-accurately. The sweep analogue of
/// LpmAlgorithm::run_two_stage for when the configurations of interest are
/// enumerable up front (ablation grids, Table-I style comparisons).
struct SweepOptions {
  /// Analytic backend ranking the full candidate set.
  std::string screen_backend = model::kRdhBackend;
  /// Candidates surviving the screen and re-evaluated cycle-accurately.
  std::size_t confirm_top_k = 8;
  double delta_percent = kFineGrainedDelta;
  /// nullptr = the process-wide shared engine.
  exp::ExperimentEngine* engine = nullptr;
};

/// One candidate's ranking entry (screen or confirm fidelity).
struct RankedConfig {
  ArchKnobs knobs;
  std::string backend;
  bool meets_t1 = false;
  double lpmr1 = 0.0;
  double t1 = 0.0;
  double stall_per_instr = 0.0;
  double hardware_cost = 0.0;
};

struct SweepResult {
  /// Every candidate, analytically ranked: T1-meeting configs first (by
  /// hardware cost, cheapest first), then the rest by LPMR1 distance.
  std::vector<RankedConfig> screened;
  /// The surviving frontier re-ranked from cycle-accurate evaluations.
  std::vector<RankedConfig> confirmed;
  /// Best confirmed configuration (first of `confirmed`).
  ArchKnobs best;
  std::size_t analytic_evals = 0;
  std::size_t cycle_evals = 0;
};

/// Throws util::ConfigError for an empty candidate list or an unknown
/// screen backend.
[[nodiscard]] SweepResult screen_then_confirm_sweep(
    const sim::MachineConfig& base, const trace::WorkloadProfile& workload,
    const std::vector<ArchKnobs>& candidates, const SweepOptions& opts = {});

}  // namespace lpm::core
