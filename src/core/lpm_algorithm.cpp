#include "core/lpm_algorithm.hpp"

#include "util/error.hpp"
#include "util/log.hpp"

namespace lpm::core {

const char* to_string(LpmAction a) {
  switch (a) {
    case LpmAction::kOptimizeBoth: return "optimize-L1+L2";
    case LpmAction::kOptimizeL1: return "optimize-L1";
    case LpmAction::kReduceOverprovision: return "reduce-overprovision";
    case LpmAction::kDone: return "done";
  }
  return "?";
}

LpmAlgorithm::LpmAlgorithm(LpmAlgorithmConfig cfg) : cfg_(cfg) {
  util::require(cfg_.delta_percent > 0.0, "LpmAlgorithm: delta must be positive");
  util::require(cfg_.margin_fraction >= 0.0 && cfg_.margin_fraction < 1.0,
                "LpmAlgorithm: margin_fraction must be in [0, 1)");
  util::require(cfg_.max_iterations >= 1, "LpmAlgorithm: need >= 1 iteration");
}

LpmAction LpmAlgorithm::classify(const LpmObservation& obs) const {
  // Fig. 3: Case I/II need optimization; Case III trims over-provision;
  // Case IV terminates.
  if (obs.lpmr.lpmr1 > obs.t1) {
    return obs.lpmr.lpmr2 > obs.t2 ? LpmAction::kOptimizeBoth
                                   : LpmAction::kOptimizeL1;
  }
  const double delta = cfg_.margin_fraction * obs.t1;
  if (cfg_.trim_overprovision && obs.lpmr.lpmr1 + delta < obs.t1) {
    return LpmAction::kReduceOverprovision;
  }
  return LpmAction::kDone;
}

LpmOutcome LpmAlgorithm::run(LpmTunable& system) const {
  LpmOutcome out;
  for (int iter = 0; iter < cfg_.max_iterations; ++iter) {
    if (cfg_.prefetch_candidates) system.prefetch_candidates();
    LpmObservation obs = system.measure();
    const LpmAction action = classify(obs);

    LpmStep step;
    step.iteration = iter;
    step.action = action;
    step.observation = obs;

    util::log_info() << "LPM iter " << iter << " [" << obs.config_label
                     << "] LPMR1=" << obs.lpmr.lpmr1 << " T1=" << obs.t1
                     << " LPMR2=" << obs.lpmr.lpmr2 << " T2=" << obs.t2
                     << " -> " << to_string(action);

    switch (action) {
      case LpmAction::kDone:
        step.applied = true;
        out.steps.push_back(step);
        out.final_observation = obs;
        out.converged = true;
        return out;
      case LpmAction::kOptimizeBoth: {
        const bool a = system.optimize_l1();
        const bool b = system.optimize_l2();
        step.applied = a || b;
        break;
      }
      case LpmAction::kOptimizeL1:
        step.applied = system.optimize_l1();
        break;
      case LpmAction::kReduceOverprovision:
        step.applied = system.reduce_overprovision();
        break;
    }
    out.steps.push_back(step);

    if (!step.applied) {
      // Out of actions. Reaching here from Case III means the configuration
      // is already minimal: that is convergence, not failure.
      out.final_observation = obs;
      out.converged = action == LpmAction::kReduceOverprovision;
      out.exhausted = !out.converged;
      return out;
    }
  }
  out.final_observation = system.measure();
  out.exhausted = true;
  return out;
}

}  // namespace lpm::core
