#include "core/lpm_algorithm.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace lpm::core {

const char* to_string(LpmAction a) {
  switch (a) {
    case LpmAction::kOptimizeBoth: return "optimize-L1+L2";
    case LpmAction::kOptimizeL1: return "optimize-L1";
    case LpmAction::kReduceOverprovision: return "reduce-overprovision";
    case LpmAction::kDone: return "done";
  }
  return "?";
}

LpmAlgorithm::LpmAlgorithm(LpmAlgorithmConfig cfg) : cfg_(cfg) {
  util::require(cfg_.delta_percent > 0.0, "LpmAlgorithm: delta must be positive");
  util::require(cfg_.margin_fraction >= 0.0 && cfg_.margin_fraction < 1.0,
                "LpmAlgorithm: margin_fraction must be in [0, 1)");
  util::require(cfg_.max_iterations >= 1, "LpmAlgorithm: need >= 1 iteration");
}

LpmAction LpmAlgorithm::classify(const LpmObservation& obs) const {
  // Fig. 3: Case I/II need optimization; Case III trims over-provision;
  // Case IV terminates.
  if (obs.lpmr.lpmr1 > obs.t1) {
    return obs.lpmr.lpmr2 > obs.t2 ? LpmAction::kOptimizeBoth
                                   : LpmAction::kOptimizeL1;
  }
  const double delta = cfg_.margin_fraction * obs.t1;
  if (cfg_.trim_overprovision && obs.lpmr.lpmr1 + delta < obs.t1) {
    return LpmAction::kReduceOverprovision;
  }
  return LpmAction::kDone;
}

namespace {

/// Walk-exit telemetry: one call per run(), on every return path.
void publish_outcome(const LpmOutcome& out) {
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("lpm.walks").inc();
  reg.counter("lpm.iterations").add(out.steps.size());
  // Resolved even when 0 so both names always appear in the snapshot.
  reg.counter("lpm.converged").add(out.converged ? 1 : 0);
  reg.counter("lpm.exhausted").add(out.exhausted ? 1 : 0);
}

/// Per-iteration telemetry: the LPMR trajectory lands both in the lpm.lpmr1/2
/// histograms (aggregate view) and — when tracing is on — as an "lpm.lpmr"
/// counter-event series, which Perfetto renders as the walk's trajectory
/// over time (see OBSERVABILITY.md for the worked example).
void publish_iteration(const LpmObservation& obs, LpmAction action) {
  auto& reg = obs::MetricsRegistry::global();
  const auto bounds = obs::MetricsRegistry::concurrency_bounds();
  reg.histogram("lpm.lpmr1", bounds).observe(obs.lpmr.lpmr1);
  reg.histogram("lpm.lpmr2", bounds).observe(obs.lpmr.lpmr2);
  if (auto* session = obs::TraceSession::global()) {
    session->counter_event("lpm.lpmr", session->now_us(),
                           {{"lpmr1", obs.lpmr.lpmr1},
                            {"lpmr2", obs.lpmr.lpmr2},
                            {"lpmr3", obs.lpmr.lpmr3}});
    session->instant_event("lpm.action", "lpm", session->now_us(),
                           {{"case", static_cast<double>(action)}});
  }
}

}  // namespace

LpmOutcome LpmAlgorithm::run(LpmTunable& system) const {
  OBS_SPAN("lpm.run", "lpm");
  LpmOutcome out;
  for (int iter = 0; iter < cfg_.max_iterations; ++iter) {
    obs::ScopedSpan iter_span(obs::TraceSession::global(), "lpm.iteration",
                              "lpm");
    if (cfg_.prefetch_candidates) system.prefetch_candidates();
    LpmObservation obs = system.measure();
    const LpmAction action = classify(obs);
    iter_span.arg("lpmr1", obs.lpmr.lpmr1);
    iter_span.arg("lpmr2", obs.lpmr.lpmr2);
    publish_iteration(obs, action);

    LpmStep step;
    step.iteration = iter;
    step.action = action;
    step.observation = obs;

    util::log_info() << "LPM iter " << iter << " [" << obs.config_label
                     << "] LPMR1=" << obs.lpmr.lpmr1 << " T1=" << obs.t1
                     << " LPMR2=" << obs.lpmr.lpmr2 << " T2=" << obs.t2
                     << " -> " << to_string(action);

    switch (action) {
      case LpmAction::kDone:
        step.applied = true;
        out.steps.push_back(step);
        out.final_observation = obs;
        out.converged = true;
        publish_outcome(out);
        return out;
      case LpmAction::kOptimizeBoth: {
        const bool a = system.optimize_l1();
        const bool b = system.optimize_l2();
        step.applied = a || b;
        break;
      }
      case LpmAction::kOptimizeL1:
        step.applied = system.optimize_l1();
        break;
      case LpmAction::kReduceOverprovision:
        step.applied = system.reduce_overprovision();
        break;
    }
    out.steps.push_back(step);

    if (!step.applied) {
      // Out of actions. Reaching here from Case III means the configuration
      // is already minimal: that is convergence, not failure.
      out.final_observation = obs;
      out.converged = action == LpmAction::kReduceOverprovision;
      out.exhausted = !out.converged;
      publish_outcome(out);
      return out;
    }
  }
  out.final_observation = system.measure();
  out.exhausted = true;
  publish_outcome(out);
  return out;
}

LpmTwoStageOutcome LpmAlgorithm::run_two_stage(LpmTunable& screen,
                                               LpmTunable& confirm) const {
  OBS_SPAN("lpm.run_two_stage", "lpm");
  obs::MetricsRegistry::global().counter("lpm.two_stage_walks").inc();
  LpmTwoStageOutcome out;
  out.screen = run(screen);
  out.confirm = run(confirm);
  return out;
}

}  // namespace lpm::core
