// Layer/bottleneck diagnosis: the LPM model "presents guidance on when and
// how to use existing locality and concurrency driven techniques
// collectively" (paper §I). Given one application measurement plus the
// hardware back-pressure counters, rank what is binding and say what to do
// about it. The design-space explorer consumes the top recommendation; the
// examples print the narrative.
#pragma once

#include <string>
#include <vector>

#include "core/lpm_model.hpp"

namespace lpm::core {

enum class Bottleneck {
  kMatched,          ///< LPMR1 within threshold: nothing to do
  kL1Ports,          ///< accesses bounce off the L1 ports (C_H starved)
  kMshrParallelism,  ///< misses serialize on MSHRs (C_M / C_m capped)
  kWindow,           ///< ROB/IW too small to expose the program's MLP
  kIssueBandwidth,   ///< compute demand capped before memory is the issue
  kL2Layer,          ///< LPMR2 above T2: the L2 layer must improve too
  kMemoryLayer,      ///< LPMR3 dominates: DRAM-side (bandwidth/banking)
};

[[nodiscard]] const char* to_string(Bottleneck b);

/// Structural facts the pure model cannot see; all optional (0 = unknown).
struct HardwareContext {
  std::uint32_t mshr_entries = 0;
  std::uint32_t l1_ports = 0;
  std::uint32_t rob_size = 0;
  std::uint32_t issue_width = 0;
  std::uint64_t l1_rejections = 0;      ///< core-side access bounces
  std::uint64_t l1_mshr_wait_cycles = 0;
  std::uint64_t l1_misses = 0;
};

struct Finding {
  Bottleneck what = Bottleneck::kMatched;
  double severity = 0.0;  ///< comparable across findings; higher = worse
  std::string evidence;   ///< one-line justification from the counters
};

struct Diagnosis {
  std::vector<Finding> findings;  ///< ranked, most severe first
  LpmrSet lpmr;
  double t1 = 0.0;
  double t2 = 0.0;

  [[nodiscard]] Bottleneck primary() const {
    return findings.empty() ? Bottleneck::kMatched : findings.front().what;
  }
  /// Multi-line human-readable report.
  [[nodiscard]] std::string narrative() const;
};

/// Ranks what limits this application's layered matching at `delta_percent`.
[[nodiscard]] Diagnosis diagnose(const AppMeasurement& m,
                                 const HardwareContext& hw,
                                 double delta_percent = kCoarseGrainedDelta);

}  // namespace lpm::core
