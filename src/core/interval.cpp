#include "core/interval.hpp"

#include <memory>

#include "sim/system.hpp"
#include "trace/spec_like.hpp"
#include "trace/synthetic.hpp"
#include "util/error.hpp"

namespace lpm::core {

double IntervalStudyResult::detected_fraction() const {
  if (bursts.empty()) return 0.0;
  std::size_t n = 0;
  for (const auto& b : bursts) {
    if (b.detected) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(bursts.size());
}

double IntervalStudyResult::timely_fraction() const {
  if (bursts.empty()) return 0.0;
  std::size_t n = 0;
  for (const auto& b : bursts) {
    if (b.timely) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(bursts.size());
}

IntervalStudyResult run_interval_study(const sim::MachineConfig& machine,
                                       const trace::WorkloadProfile& workload,
                                       const IntervalStudyConfig& cfg) {
  util::require(machine.num_cores == 1, "interval study: single-core machine");
  util::require(workload.phase_length > 0,
                "interval study: workload must have phases");
  util::require(cfg.interval_cycles >= 1, "interval study: interval must be >= 1");

  std::vector<trace::TraceSourcePtr> traces;
  traces.push_back(trace::make_trace(workload));
  sim::System system(machine, std::move(traces));

  // Ground truth: the cycle window of each burst phase, derived from when
  // the core's commit count crosses the phase's op-index boundaries.
  const std::uint64_t num_phases =
      (workload.length + workload.phase_length - 1) / workload.phase_length;
  std::vector<Cycle> phase_start(num_phases + 1, kNoCycle);
  phase_start[0] = 0;

  IntervalStudyResult result;
  std::vector<std::pair<Cycle, double>> flagged;  // (boundary cycle, demand)

  double baseline = 0.0;
  double warmup_sum = 0.0;
  std::uint64_t warmup_seen = 0;
  std::uint64_t last_accesses = 0;
  std::uint64_t next_phase_to_mark = 1;

  while (system.step()) {
    const Cycle now = system.now();  // cycles completed so far

    // Record phase boundary crossings by committed instruction count.
    const std::uint64_t committed = system.core(0).stats().instructions;
    while (next_phase_to_mark <= num_phases &&
           committed >= next_phase_to_mark * workload.phase_length) {
      phase_start[next_phase_to_mark] = now;
      ++next_phase_to_mark;
    }

    // Interval boundary: read the lightweight counters.
    if (now % cfg.interval_cycles == 0) {
      const std::uint64_t accesses = system.l1_analyzer(0).metrics().accesses;
      const double demand = static_cast<double>(accesses - last_accesses) /
                            static_cast<double>(cfg.interval_cycles);
      last_accesses = accesses;
      ++result.intervals;

      if (warmup_seen < cfg.warmup_intervals) {
        // Bootstrap: average the leading intervals (bursts included; the
        // duty cycle keeps the mean close to the calm level).
        warmup_sum += demand;
        ++warmup_seen;
        baseline = warmup_sum / static_cast<double>(warmup_seen);
      } else if (demand > cfg.demand_threshold_factor * baseline) {
        ++result.flagged_intervals;
        flagged.emplace_back(now, demand);
      } else {
        baseline = (1.0 - cfg.baseline_alpha) * baseline +
                   cfg.baseline_alpha * demand;
      }
    }
  }
  result.total_cycles = system.now();
  // Unreached boundaries (trace drained early): clamp to end.
  for (auto& c : phase_start) {
    if (c == kNoCycle) c = result.total_cycles;
  }

  // Score each true burst phase.
  for (std::uint64_t p = 0; p < num_phases; ++p) {
    if (!trace::SyntheticTrace::is_burst_phase(workload, p)) continue;
    BurstWindow w;
    w.begin = phase_start[p];
    w.end = phase_start[p + 1];
    for (const auto& [t, demand] : flagged) {
      if (t >= w.begin && t <= w.end) {
        w.detected = true;
        if (w.detected_at == kNoCycle) w.detected_at = t;
        if (t + cfg.processing_cost_cycles <= w.end) {
          w.timely = true;
          break;
        }
      }
      if (t > w.end) break;
    }
    result.bursts.push_back(w);
  }
  return result;
}

}  // namespace lpm::core
