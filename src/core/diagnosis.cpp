#include "core/diagnosis.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace lpm::core {

const char* to_string(Bottleneck b) {
  switch (b) {
    case Bottleneck::kMatched: return "matched";
    case Bottleneck::kL1Ports: return "L1-ports";
    case Bottleneck::kMshrParallelism: return "MSHR-parallelism";
    case Bottleneck::kWindow: return "window (ROB/IW)";
    case Bottleneck::kIssueBandwidth: return "issue-bandwidth";
    case Bottleneck::kL2Layer: return "L2-layer";
    case Bottleneck::kMemoryLayer: return "memory-layer";
  }
  return "?";
}

std::string Diagnosis::narrative() const {
  std::ostringstream os;
  os << "LPMR1=" << lpmr.lpmr1 << " (T1=" << t1 << "), LPMR2=" << lpmr.lpmr2
     << " (T2=" << t2 << "), LPMR3=" << lpmr.lpmr3 << "\n";
  if (findings.empty()) {
    os << "  layered performance is matched; no action needed\n";
    return os.str();
  }
  for (const Finding& f : findings) {
    os << "  [" << to_string(f.what) << " severity " << f.severity << "] "
       << f.evidence << "\n";
  }
  return os.str();
}

Diagnosis diagnose(const AppMeasurement& m, const HardwareContext& hw,
                   double delta_percent) {
  Diagnosis d;
  d.lpmr = compute_lpmrs(m);
  d.t1 = threshold_t1(delta_percent, m.overlap_ratio);
  d.t2 = threshold_t2(delta_percent, m);

  if (d.lpmr.lpmr1 <= d.t1) {
    return d;  // matched: no findings
  }

  const auto add = [&](Bottleneck what, double severity,
                       std::string evidence) {
    if (severity > 0.0) {
      d.findings.push_back(Finding{what, severity, std::move(evidence)});
    }
  };

  // L1 port starvation: access bounces per access.
  if (m.l1.accesses > 0 && hw.l1_rejections > 0) {
    const double rej = static_cast<double>(hw.l1_rejections) /
                       static_cast<double>(m.l1.accesses);
    std::ostringstream ev;
    ev << rej << " rejections per access at " << hw.l1_ports << " port(s)";
    add(Bottleneck::kL1Ports, 10.0 * rej, ev.str());
  }

  // MSHR saturation: waits per miss, or measured miss concurrency pressing
  // against the MSHR count.
  {
    double severity = 0.0;
    std::ostringstream ev;
    if (hw.l1_misses > 0 && hw.l1_mshr_wait_cycles > 0) {
      const double wait = static_cast<double>(hw.l1_mshr_wait_cycles) /
                          static_cast<double>(hw.l1_misses);
      severity = std::max(severity, wait);
      ev << wait << " MSHR-wait cycles per miss";
    }
    if (hw.mshr_entries > 0 &&
        m.l1.Cm() > 0.8 * static_cast<double>(hw.mshr_entries)) {
      severity = std::max(severity, 1.0);
      if (ev.tellp() > 0) ev << "; ";
      ev << "C_m " << m.l1.Cm() << " presses against " << hw.mshr_entries
         << " MSHRs";
    }
    add(Bottleneck::kMshrParallelism, severity, ev.str());
  }

  // Window-bound: the program stalls on memory yet miss concurrency stays
  // low without MSHR pressure - the OoO engine cannot expose more misses.
  if (hw.mshr_entries > 0 &&
      m.l1.Cm() < 0.5 * static_cast<double>(hw.mshr_entries) &&
      m.measured_stall_per_instr > 0.1 * m.cpi_exe) {
    std::ostringstream ev;
    ev << "C_m " << m.l1.Cm() << " well under " << hw.mshr_entries
       << " MSHRs while stalled: window too small to expose MLP";
    add(Bottleneck::kWindow, m.measured_stall_per_instr / m.cpi_exe, ev.str());
  }

  // L2 layer: Fig. 3's Case-I condition. A non-positive T2 means the L1
  // hit path alone (H*fmem/C_H) already exceeds the stall budget - no L2
  // improvement can meet it, so the blame stays with the L1-side findings.
  if (std::isfinite(d.t2) && d.t2 > 0.0 && d.lpmr.lpmr2 > d.t2) {
    std::ostringstream ev;
    ev << "LPMR2 " << d.lpmr.lpmr2 << " exceeds T2 " << d.t2
       << ": optimize the L2 layer simultaneously (Case I)";
    add(Bottleneck::kL2Layer, std::min(d.lpmr.lpmr2 / d.t2, 100.0), ev.str());
  }

  // Memory layer: LPMR3 comparable to LPMR2 means penalties originate in
  // DRAM, which no cache-side knob fixes.
  if (d.lpmr.lpmr3 > 0.5 * d.lpmr.lpmr2 && d.lpmr.lpmr3 > d.t1) {
    std::ostringstream ev;
    ev << "LPMR3 " << d.lpmr.lpmr3 << " within 2x of LPMR2: penalties "
       << "originate at main memory (banking/bandwidth)";
    add(Bottleneck::kMemoryLayer, d.lpmr.lpmr3, ev.str());
  }

  std::stable_sort(d.findings.begin(), d.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.severity > b.severity;
                   });
  if (d.findings.empty()) {
    // Mismatched but no structural signal: compute demand itself outruns
    // the memory system; more issue width will not help.
    Finding f;
    f.what = Bottleneck::kIssueBandwidth;
    f.severity = d.lpmr.lpmr1 / d.t1;
    f.evidence = "LPMR1 above threshold with no port/MSHR/window signal";
    d.findings.push_back(f);
  }
  return d;
}

}  // namespace lpm::core
