// Online interval measurement (paper §V): the LPM algorithm is re-run every
// time interval; the interval length trades detection timeliness against
// reconfiguration/scheduling cost. This module measures how many burst data
// access phases are "perceived and processed timely" for a given interval
// size and processing cost (hardware reconfiguration: 4 cycles; software
// scheduling: 40 cycles).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/machine_config.hpp"
#include "trace/workload_profile.hpp"
#include "util/types.hpp"

namespace lpm::core {

struct IntervalStudyConfig {
  std::uint64_t interval_cycles = 10;
  std::uint64_t processing_cost_cycles = 4;
  /// An interval is flagged as a burst when its L1 demand (accesses per
  /// cycle) exceeds this multiple of the trailing non-burst average.
  double demand_threshold_factor = 1.5;
  /// EMA smoothing for the non-burst baseline.
  double baseline_alpha = 0.2;
  /// Number of leading intervals averaged to bootstrap the baseline (no
  /// flagging during warmup; prevents a cold first interval from pinning
  /// the baseline at zero).
  std::uint64_t warmup_intervals = 16;
};

struct BurstWindow {
  Cycle begin = 0;           ///< first cycle of the burst phase
  Cycle end = 0;             ///< one past the last cycle
  bool detected = false;     ///< some interval inside it was flagged
  bool timely = false;       ///< flagged early enough to also be processed
  Cycle detected_at = kNoCycle;
};

struct IntervalStudyResult {
  std::vector<BurstWindow> bursts;
  std::uint64_t intervals = 0;
  std::uint64_t flagged_intervals = 0;
  Cycle total_cycles = 0;

  [[nodiscard]] double detected_fraction() const;
  [[nodiscard]] double timely_fraction() const;  ///< the paper's 96%/89%/73% metric
};

/// Runs `workload` (which must have burst phases) on a single-core machine
/// and evaluates burst detection under the given interval configuration.
IntervalStudyResult run_interval_study(const sim::MachineConfig& machine,
                                       const trace::WorkloadProfile& workload,
                                       const IntervalStudyConfig& cfg);

}  // namespace lpm::core
