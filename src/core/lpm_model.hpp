// Compatibility aliases: the LPM measurement math (AppMeasurement, the
// LPMR / stall / threshold formulas) moved to src/model/measurement.hpp
// when the ModelBackend seam was introduced — the model layer sits below
// core so analytic backends and the cycle path share one set of equations.
// Core code and its consumers keep using the core:: names via this shim.
#pragma once

#include "model/measurement.hpp"

namespace lpm::core {

using AppMeasurement = model::AppMeasurement;
using LpmrSet = model::LpmrSet;

using model::compute_lpmrs;
using model::eta_combined;
using model::stall_eq7;
using model::stall_eq12;
using model::stall_eq13;
using model::threshold_t1;
using model::threshold_t2;
using model::meets_stall_target;

using model::kCoarseGrainedDelta;
using model::kFineGrainedDelta;

}  // namespace lpm::core
