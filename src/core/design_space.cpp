#include "core/design_space.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "core/diagnosis.hpp"
#include "model/analytic.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace lpm::core {

sim::MachineConfig ArchKnobs::apply(sim::MachineConfig base) const {
  base.core.issue_width = issue_width;
  base.core.dispatch_width = issue_width;
  base.core.commit_width = issue_width;
  base.core.iw_size = std::min(iw_size, rob_size);
  base.core.rob_size = rob_size;
  // The LSQ scales with the window: an aggressive front end needs in-flight
  // memory capacity to exploit it.
  base.core.lsq_size = std::max<std::uint32_t>(8, rob_size / 2);
  base.l1.ports = l1_ports;
  base.l1.mshr_entries = mshr_entries;
  base.l2.banks = l2_interleave;
  base.l2.ports = std::max<std::uint32_t>(2, l1_ports);
  base.l2.mshr_entries = std::max<std::uint32_t>(8, mshr_entries * 2);
  return base;
}

double ArchKnobs::hardware_cost() const {
  // Arbitrary silicon-area units: ports and issue slots are expensive
  // (superlinear wiring), window/ROB entries and MSHRs are cheaper SRAM.
  return 8.0 * issue_width + 0.5 * iw_size + 0.5 * rob_size +
         16.0 * l1_ports + 2.0 * mshr_entries + 1.0 * l2_interleave;
}

std::string ArchKnobs::label() const {
  std::ostringstream os;
  os << "issue=" << issue_width << " iw=" << iw_size << " rob=" << rob_size
     << " ports=" << l1_ports << " mshr=" << mshr_entries
     << " l2il=" << l2_interleave;
  return os.str();
}

ArchKnobs ArchKnobs::config_a() { return ArchKnobs{4, 32, 32, 1, 4, 4}; }
ArchKnobs ArchKnobs::config_b() { return ArchKnobs{4, 64, 64, 1, 8, 8}; }
ArchKnobs ArchKnobs::config_c() { return ArchKnobs{6, 64, 64, 2, 16, 8}; }
ArchKnobs ArchKnobs::config_d() { return ArchKnobs{8, 128, 128, 4, 16, 8}; }
ArchKnobs ArchKnobs::config_e() { return ArchKnobs{8, 96, 96, 4, 16, 8}; }

KnobLevels KnobLevels::standard() {
  KnobLevels k;
  k.issue_width = {1, 2, 3, 4, 5, 6, 7, 8, 12, 16};
  k.iw_size = {8, 16, 32, 48, 64, 96, 128, 160, 192, 256};
  k.rob_size = {8, 16, 32, 48, 64, 96, 128, 160, 192, 256};
  k.l1_ports = {1, 2, 3, 4, 5, 6, 7, 8, 12, 16};
  k.mshr_entries = {1, 2, 4, 8, 12, 16, 24, 32, 48, 64};
  k.l2_interleave = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512};
  return k;
}

std::uint64_t KnobLevels::space_size() const {
  return static_cast<std::uint64_t>(issue_width.size()) * iw_size.size() *
         rob_size.size() * l1_ports.size() * mshr_entries.size() *
         l2_interleave.size();
}

DesignSpaceExplorer::DesignSpaceExplorer(sim::MachineConfig base,
                                         trace::WorkloadProfile workload,
                                         KnobLevels levels, ArchKnobs start,
                                         double delta_percent,
                                         exp::ExperimentEngine* engine,
                                         std::string backend)
    : base_(std::move(base)),
      workload_(std::move(workload)),
      levels_(std::move(levels)),
      knobs_(start),
      delta_percent_(delta_percent),
      engine_(engine),
      backend_(std::move(backend)) {
  util::require(base_.num_cores == 1,
                "DesignSpaceExplorer: Case Study I explores a single program");
  workload_.validate();
  if (backend_ != exp::kCycleBackend) model::register_analytic_executors();
  util::require(exp::ExperimentEngine::has_backend_executor(backend_),
                "DesignSpaceExplorer: unknown backend '" + backend_ + "'");
}

exp::ExperimentEngine& DesignSpaceExplorer::engine() const {
  return engine_ != nullptr ? *engine_ : exp::ExperimentEngine::shared();
}

exp::SimJob DesignSpaceExplorer::make_job(const ArchKnobs& knobs) const {
  exp::SimJob job =
      exp::SimJob::solo(knobs.apply(base_), workload_, /*calibrate=*/true,
                        workload_.name + " | " + knobs.label());
  job.backend = backend_;
  return job;
}

const model::LayerEstimates& DesignSpaceExplorer::memoize(
    const ArchKnobs& knobs, const exp::SimJob& job, exp::SimResultPtr result) {
  util::require(result->run.completed,
                "DesignSpaceExplorer: run hit max_cycles");
  const auto [it, inserted] = memo_.emplace(
      knobs, model::LayerEstimates::from_result(job, std::move(result)));
  if (inserted) visited_.push_back(knobs);
  return it->second;
}

std::uint32_t DesignSpaceExplorer::step_up(const std::vector<std::uint32_t>& levels,
                                           std::uint32_t value) {
  for (const std::uint32_t v : levels) {
    if (v > value) return v;
  }
  return value;
}

std::uint32_t DesignSpaceExplorer::step_down(const std::vector<std::uint32_t>& levels,
                                             std::uint32_t value) {
  std::uint32_t best = value;
  for (const std::uint32_t v : levels) {
    if (v < value && (best == value || v > best)) best = v;
  }
  return best;
}

void DesignSpaceExplorer::apply_knobs(const ArchKnobs& next) {
  if (next == knobs_) return;
  // Each knob that changes is one reconfiguration operation (4 cycles).
  if (next.issue_width != knobs_.issue_width) ++reconfig_ops_;
  if (next.iw_size != knobs_.iw_size) ++reconfig_ops_;
  if (next.rob_size != knobs_.rob_size) ++reconfig_ops_;
  if (next.l1_ports != knobs_.l1_ports) ++reconfig_ops_;
  if (next.mshr_entries != knobs_.mshr_entries) ++reconfig_ops_;
  if (next.l2_interleave != knobs_.l2_interleave) ++reconfig_ops_;
  knobs_ = next;
}

const model::LayerEstimates& DesignSpaceExplorer::evaluate_full(
    const ArchKnobs& knobs) {
  if (const auto it = memo_.find(knobs); it != memo_.end()) return it->second;
  // On-path evaluations are fail-fast by design: the Fig. 3 walk cannot
  // classify a mismatch it could not measure, so a failure here (after the
  // engine's own retries) propagates as the job's typed error.
  const exp::SimJob job = make_job(knobs);
  return memoize(knobs, job, engine().run(job));
}

const AppMeasurement& DesignSpaceExplorer::evaluate(const ArchKnobs& knobs) {
  return evaluate_full(knobs).app(0);
}

const model::LayerEstimates& DesignSpaceExplorer::estimate(
    const ArchKnobs& knobs) {
  return evaluate_full(knobs);
}

void DesignSpaceExplorer::set_prefetch_hints(std::vector<ArchKnobs> hints) {
  hints_ = std::move(hints);
}

void DesignSpaceExplorer::evaluate_batch(const std::vector<ArchKnobs>& batch) {
  std::vector<ArchKnobs> todo;
  for (const ArchKnobs& k : batch) {
    if (memo_.contains(k)) continue;
    if (std::find(todo.begin(), todo.end(), k) != todo.end()) continue;
    todo.push_back(k);
  }
  if (todo.empty()) return;

  std::vector<exp::SimJob> jobs;
  jobs.reserve(todo.size());
  for (const ArchKnobs& k : todo) jobs.push_back(make_job(k));
  // Batched candidates are speculative or independent trials: one failing
  // point must not abort the others, so collect-and-continue. A failed
  // candidate stays out of the memo — callers treat it as unavailable, and
  // an on-path evaluation of the same point would retry and then fail fast
  // in evaluate_full.
  const auto outcomes = engine().run_batch_outcomes(
      jobs, exp::BatchOptions{exp::FailurePolicy::kCollect,
                              /*consult_journal=*/false});
  for (std::size_t i = 0; i < todo.size(); ++i) {
    if (!outcomes[i].ok()) {
      util::log_warn() << "design-space candidate '" << jobs[i].tag
                       << "' failed ("
                       << util::error_code_name(outcomes[i].error)
                       << "): " << outcomes[i].error_message;
      continue;
    }
    if (!outcomes[i].result->run.completed) {
      util::log_warn() << "design-space candidate '" << jobs[i].tag
                       << "' hit max_cycles; skipping";
      continue;
    }
    memoize(todo[i], jobs[i], outcomes[i].result);
  }
}

void DesignSpaceExplorer::prefetch_candidates() {
  if (!hints_.empty()) {
    // One-shot warm-up: the screening trajectory simulates as one
    // concurrent batch before the first on-path evaluation needs it.
    std::vector<ArchKnobs> hints;
    hints.swap(hints_);
    evaluate_batch(hints);
  }
  if (!speculate_) return;
  // Speculation trades extra simulations for wall-clock: only worth it when
  // the engine can actually overlap them.
  if (engine().threads() <= 1) return;
  std::vector<ArchKnobs> batch;
  batch.push_back(knobs_);
  {
    ArchKnobs n = knobs_;
    n.l1_ports = step_up(levels_.l1_ports, knobs_.l1_ports);
    batch.push_back(n);
  }
  {
    ArchKnobs n = knobs_;
    n.mshr_entries = step_up(levels_.mshr_entries, knobs_.mshr_entries);
    batch.push_back(n);
  }
  {
    ArchKnobs n = knobs_;
    n.rob_size = step_up(levels_.rob_size, knobs_.rob_size);
    n.iw_size = step_up(levels_.iw_size, knobs_.iw_size);
    batch.push_back(n);
  }
  {
    ArchKnobs n = knobs_;
    n.issue_width = step_up(levels_.issue_width, knobs_.issue_width);
    batch.push_back(n);
  }
  {
    ArchKnobs n = knobs_;
    n.l2_interleave = step_up(levels_.l2_interleave, knobs_.l2_interleave);
    batch.push_back(n);
  }
  evaluate_batch(batch);
}

LpmObservation DesignSpaceExplorer::observe(const ArchKnobs& knobs) {
  const model::LayerEstimates& est = evaluate_full(knobs);
  const AppMeasurement& m = est.app(0);
  LpmObservation obs;
  obs.lpmr = est.lpmr;
  obs.t1 = threshold_t1(delta_percent_, m.overlap_ratio);
  obs.t2 = threshold_t2(delta_percent_, m);
  obs.stall_per_instr = m.measured_stall_per_instr;
  obs.cpi_exe = m.cpi_exe;
  obs.overlap_ratio = m.overlap_ratio;
  obs.config_label = knobs.label();
  obs.backend = est.backend;
  return obs;
}

LpmObservation DesignSpaceExplorer::measure() { return observe(knobs_); }

bool DesignSpaceExplorer::optimize_l1() {
  const model::LayerEstimates& ev = evaluate_full(knobs_);

  // Let the shared LPM diagnosis rank the bottlenecks, then apply the
  // first recommendation that still has head-room in the knob levels.
  HardwareContext hw;
  hw.mshr_entries = knobs_.mshr_entries;
  hw.l1_ports = knobs_.l1_ports;
  hw.rob_size = knobs_.rob_size;
  hw.issue_width = knobs_.issue_width;
  hw.l1_rejections = ev.hw.l1_rejections;
  hw.l1_mshr_wait_cycles = ev.hw.l1_mshr_wait_cycles;
  hw.l1_misses = ev.hw.l1_misses;
  const Diagnosis diag = diagnose(ev.app(0), hw, delta_percent_);

  for (const Finding& finding : diag.findings) {
    ArchKnobs next = knobs_;
    switch (finding.what) {
      case Bottleneck::kL1Ports:
        next.l1_ports = step_up(levels_.l1_ports, knobs_.l1_ports);
        break;
      case Bottleneck::kMshrParallelism:
        next.mshr_entries = step_up(levels_.mshr_entries, knobs_.mshr_entries);
        break;
      case Bottleneck::kWindow:
        next.rob_size = step_up(levels_.rob_size, knobs_.rob_size);
        next.iw_size = step_up(levels_.iw_size, knobs_.iw_size);
        break;
      case Bottleneck::kIssueBandwidth:
        next.issue_width = step_up(levels_.issue_width, knobs_.issue_width);
        break;
      case Bottleneck::kL2Layer:
      case Bottleneck::kMemoryLayer:
      case Bottleneck::kMatched:
        continue;  // not an L1-layer action (optimize_l2 handles the first)
    }
    if (next != knobs_) {
      apply_knobs(next);
      return true;
    }
  }
  // Recommended knobs are maxed: fall back to anything with head-room so
  // the Fig. 3 loop can still make progress.
  for (const auto& widen : {
           +[](ArchKnobs& k, const KnobLevels& l) {
             k.mshr_entries = step_up(l.mshr_entries, k.mshr_entries);
           },
           +[](ArchKnobs& k, const KnobLevels& l) {
             k.l1_ports = step_up(l.l1_ports, k.l1_ports);
           },
           +[](ArchKnobs& k, const KnobLevels& l) {
             k.rob_size = step_up(l.rob_size, k.rob_size);
             k.iw_size = step_up(l.iw_size, k.iw_size);
           },
           +[](ArchKnobs& k, const KnobLevels& l) {
             k.issue_width = step_up(l.issue_width, k.issue_width);
           },
       }) {
    ArchKnobs next = knobs_;
    widen(next, levels_);
    if (next != knobs_) {
      apply_knobs(next);
      return true;
    }
  }
  return false;
}

bool DesignSpaceExplorer::optimize_l2() {
  ArchKnobs next = knobs_;
  next.l2_interleave = step_up(levels_.l2_interleave, knobs_.l2_interleave);
  if (next.l2_interleave == knobs_.l2_interleave) return false;
  apply_knobs(next);
  return true;
}

bool DesignSpaceExplorer::reduce_overprovision() {
  // Try stepping each knob down, most-expensive saving first; accept the
  // first reduction that still meets the T1 threshold.
  struct Candidate {
    ArchKnobs knobs;
    double saving;
  };
  std::vector<Candidate> candidates;
  const double cost_now = knobs_.hardware_cost();

  const auto add = [&](ArchKnobs next) {
    if (next != knobs_) {
      candidates.push_back(Candidate{next, cost_now - next.hardware_cost()});
    }
  };
  {
    ArchKnobs n = knobs_;
    n.issue_width = step_down(levels_.issue_width, knobs_.issue_width);
    add(n);
  }
  {
    ArchKnobs n = knobs_;
    n.rob_size = step_down(levels_.rob_size, knobs_.rob_size);
    n.iw_size = step_down(levels_.iw_size, knobs_.iw_size);
    add(n);
  }
  {
    ArchKnobs n = knobs_;
    n.l1_ports = step_down(levels_.l1_ports, knobs_.l1_ports);
    add(n);
  }
  {
    ArchKnobs n = knobs_;
    n.mshr_entries = step_down(levels_.mshr_entries, knobs_.mshr_entries);
    add(n);
  }
  {
    ArchKnobs n = knobs_;
    n.l2_interleave = step_down(levels_.l2_interleave, knobs_.l2_interleave);
    add(n);
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.saving > b.saving;
                   });

  // All trim candidates are independent: simulate them as one engine batch,
  // then pick the best-saving one that still meets T1. (Deterministic in
  // the thread count — the batch contents don't depend on it.)
  {
    std::vector<ArchKnobs> batch;
    batch.reserve(candidates.size());
    for (const Candidate& c : candidates) batch.push_back(c.knobs);
    evaluate_batch(batch);
  }

  for (const Candidate& c : candidates) {
    // A candidate whose batched simulation failed is simply not considered
    // for trimming (re-running it serially would re-fail or stall the walk
    // on a point we only wanted opportunistically).
    if (!memo_.contains(c.knobs)) continue;
    const LpmObservation trial = observe(c.knobs);
    if (trial.lpmr.lpmr1 <= trial.t1) {
      apply_knobs(c.knobs);
      return true;
    }
  }
  return false;
}

namespace {

/// Ranking shared by the screen and confirm stages: configs meeting the T1
/// target first (cheapest silicon first), then the rest by how close they
/// come (smallest LPMR1 excess first).
void rank(std::vector<RankedConfig>& rows) {
  std::stable_sort(rows.begin(), rows.end(),
                   [](const RankedConfig& a, const RankedConfig& b) {
                     if (a.meets_t1 != b.meets_t1) return a.meets_t1;
                     if (a.meets_t1) return a.hardware_cost < b.hardware_cost;
                     return a.lpmr1 - a.t1 < b.lpmr1 - b.t1;
                   });
}

RankedConfig make_ranked(DesignSpaceExplorer& explorer, const ArchKnobs& k,
                         double delta_percent) {
  const model::LayerEstimates& est = explorer.estimate(k);
  const AppMeasurement& m = est.app(0);
  RankedConfig row;
  row.knobs = k;
  row.backend = est.backend;
  row.lpmr1 = est.lpmr.lpmr1;
  row.t1 = threshold_t1(delta_percent, m.overlap_ratio);
  row.meets_t1 = row.lpmr1 <= row.t1;
  row.stall_per_instr = m.measured_stall_per_instr;
  row.hardware_cost = k.hardware_cost();
  return row;
}

}  // namespace

SweepResult screen_then_confirm_sweep(const sim::MachineConfig& base,
                                      const trace::WorkloadProfile& workload,
                                      const std::vector<ArchKnobs>& candidates,
                                      const SweepOptions& opts) {
  util::require(!candidates.empty(),
                "screen_then_confirm_sweep: no candidates given");
  util::require(opts.confirm_top_k >= 1,
                "screen_then_confirm_sweep: confirm_top_k must be >= 1");
  obs::MetricsRegistry::global().counter("lpm.screened_sweeps").inc();

  SweepResult out;
  DesignSpaceExplorer screen(base, workload, KnobLevels::standard(),
                             candidates.front(), opts.delta_percent,
                             opts.engine, opts.screen_backend);
  screen.evaluate_batch(candidates);
  for (const ArchKnobs& k : candidates) {
    out.screened.push_back(make_ranked(screen, k, opts.delta_percent));
  }
  rank(out.screened);
  out.analytic_evals = screen.configs_evaluated();

  DesignSpaceExplorer confirm(base, workload, KnobLevels::standard(),
                              candidates.front(), opts.delta_percent,
                              opts.engine, exp::kCycleBackend);
  const std::size_t top_k =
      std::min(opts.confirm_top_k, out.screened.size());
  std::vector<ArchKnobs> frontier;
  frontier.reserve(top_k);
  for (std::size_t i = 0; i < top_k; ++i) {
    frontier.push_back(out.screened[i].knobs);
  }
  confirm.evaluate_batch(frontier);
  for (const ArchKnobs& k : frontier) {
    out.confirmed.push_back(make_ranked(confirm, k, opts.delta_percent));
  }
  rank(out.confirmed);
  out.cycle_evals = confirm.configs_evaluated();
  util::require(!out.confirmed.empty(),
                "screen_then_confirm_sweep: every frontier evaluation failed");
  out.best = out.confirmed.front().knobs;
  return out;
}

}  // namespace lpm::core
