#include "core/online_controller.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace lpm::core {

OnlineLpmController::OnlineLpmController(OnlineLpmConfig cfg) : cfg_(cfg) {
  util::require(cfg_.interval_cycles >= 1,
                "OnlineLpmController: interval must be >= 1");
  util::require(cfg_.delta_percent > 0.0,
                "OnlineLpmController: delta must be positive");
  util::require(cfg_.cpi_exe > 0.0,
                "OnlineLpmController: cpi_exe must be calibrated");
  util::require(cfg_.min_ports >= 1 && cfg_.min_ports <= cfg_.max_ports,
                "OnlineLpmController: bad port range");
}

void OnlineLpmController::observe(sim::System& system, std::size_t core_idx) {
  const Cycle now = system.now();
  if (now == 0 || now % cfg_.interval_cycles != 0) return;

  const auto& cs = system.core(core_idx).stats();
  CoreSnapshot cur;
  cur.instructions = cs.instructions;
  cur.mem_active = cs.mem_active_cycles;
  cur.overlap = cs.overlap_cycles;
  cur.stall = cs.data_stall_cycles;
  cur.rejections = cs.l1_rejections;

  CoreSnapshot d;
  d.instructions = cur.instructions - last_.instructions;
  d.mem_active = cur.mem_active - last_.mem_active;
  d.overlap = cur.overlap - last_.overlap;
  d.stall = cur.stall - last_.stall;
  d.rejections = cur.rejections - last_.rejections;
  last_ = cur;

  const camat::CamatMetrics delta = system.l1_analyzer(core_idx).interval_delta();
  if (d.instructions == 0 || delta.accesses == 0) return;

  act(system, core_idx, delta, d, now);
}

void OnlineLpmController::act(sim::System& system, std::size_t core_idx,
                              const camat::CamatMetrics& delta,
                              const CoreSnapshot& d, Cycle now) {
  // Interval-local LPMR1 (Eq. 9) and threshold (Eq. 14), for reporting; the
  // act/stop decision uses the stall target itself (stall <= delta% of
  // CPIexe), which the thresholds encode and the counters measure directly.
  const double fmem = static_cast<double>(delta.accesses) /
                      static_cast<double>(d.instructions);
  const double overlap =
      d.mem_active == 0
          ? 0.0
          : static_cast<double>(d.overlap) / static_cast<double>(d.mem_active);
  const double lpmr1 = delta.camat() * fmem / cfg_.cpi_exe;
  const double t1 = threshold_t1(cfg_.delta_percent, overlap);
  const double stall_per_instr =
      static_cast<double>(d.stall) / static_cast<double>(d.instructions);
  const double target = (cfg_.delta_percent / 100.0) * cfg_.cpi_exe;

  mem::Cache& l1 = system.l1_cache(core_idx);
  OnlineIntervalRecord rec;
  rec.at = now;
  rec.lpmr1 = lpmr1;
  rec.t1 = t1;
  rec.action = LpmAction::kDone;

  if (stall_per_instr > target) {
    // Grow the binding concurrency knob (Fig. 3 Case II at the L1 layer).
    const double rej_per_access = static_cast<double>(d.rejections) /
                                  static_cast<double>(delta.accesses);
    if (rej_per_access > 0.05 && l1.ports() < cfg_.max_ports) {
      l1.set_ports(l1.ports() + 1);
      rec.detail = "ports -> " + std::to_string(l1.ports());
      rec.action = LpmAction::kOptimizeL1;
      ++grow_actions_;
    } else if (l1.mshr_limit() < l1.config().mshr_entries &&
               delta.Cm() > 0.7 * static_cast<double>(l1.mshr_limit())) {
      l1.set_mshr_limit(l1.mshr_limit() + 2);
      rec.detail = "mshr_limit -> " + std::to_string(l1.mshr_limit());
      rec.action = LpmAction::kOptimizeL1;
      ++grow_actions_;
    } else if (l1.ports() < cfg_.max_ports) {
      l1.set_ports(l1.ports() + 1);
      rec.detail = "ports -> " + std::to_string(l1.ports());
      rec.action = LpmAction::kOptimizeL1;
      ++grow_actions_;
    }
  } else if (stall_per_instr < cfg_.margin_fraction * target) {
    // Over-provisioned (Case III): release idle concurrency, MSHRs first.
    if (l1.mshr_limit() > cfg_.min_mshr &&
        delta.Cm() < 0.3 * static_cast<double>(l1.mshr_limit())) {
      l1.set_mshr_limit(l1.mshr_limit() - 1);
      rec.detail = "mshr_limit -> " + std::to_string(l1.mshr_limit());
      rec.action = LpmAction::kReduceOverprovision;
      ++release_actions_;
    } else if (l1.ports() > cfg_.min_ports &&
               static_cast<double>(d.rejections) == 0) {
      l1.set_ports(l1.ports() - 1);
      rec.detail = "ports -> " + std::to_string(l1.ports());
      rec.action = LpmAction::kReduceOverprovision;
      ++release_actions_;
    }
  }

  rec.ports = l1.ports();
  rec.mshr_limit = l1.mshr_limit();
  history_.push_back(rec);
}

}  // namespace lpm::core
