// The LPMR Reduction Algorithm (paper Fig. 3).
//
// The algorithm is deliberately abstract: it measures a tunable system,
// classifies the mismatch into the four cases of Fig. 3, and applies one
// optimization action per iteration until convergence. Case Study I plugs
// in a reconfigurable-architecture explorer; Case Study II plugs in a
// scheduler. Both implement LpmTunable.
#pragma once

#include <string>
#include <vector>

#include "core/lpm_model.hpp"

namespace lpm::core {

/// What the algorithm decides to do after each measurement.
enum class LpmAction {
  kOptimizeBoth,         ///< Case I:  LPMR1 > T1 and LPMR2 > T2
  kOptimizeL1,           ///< Case II: LPMR1 > T1 and LPMR2 <= T2
  kReduceOverprovision,  ///< Case III: LPMR1 + delta < T1
  kDone,                 ///< Case IV: T1 - delta <= LPMR1 <= T1
};

[[nodiscard]] const char* to_string(LpmAction a);

/// One measurement of the system under optimization.
struct LpmObservation {
  LpmrSet lpmr;
  double t1 = 0.0;
  double t2 = 0.0;
  double stall_per_instr = 0.0;
  double cpi_exe = 1.0;
  double overlap_ratio = 0.0;
  std::string config_label;  ///< human-readable current configuration
  /// Model backend that produced this measurement ("cycle", "rdh", "fa");
  /// empty for tunables that do not route through a ModelBackend.
  std::string backend;
};

/// The system being optimized. measure() must reflect any action applied
/// since the previous call.
class LpmTunable {
 public:
  virtual ~LpmTunable() = default;
  virtual LpmObservation measure() = 0;
  /// Apply one L1-layer optimization step; false = no further step exists.
  virtual bool optimize_l1() = 0;
  /// Apply one L2-layer optimization step; false = no further step exists.
  virtual bool optimize_l2() = 0;
  /// Remove one unit of hardware over-provision without violating T1;
  /// false = nothing can be reduced.
  virtual bool reduce_overprovision() = 0;
  /// Called at the top of each iteration: batch-submit the candidate
  /// configurations the next measure/optimize calls are likely to need
  /// (e.g. through the experiment engine) so they simulate concurrently.
  /// Purely a throughput hint — results must be unaffected.
  virtual void prefetch_candidates() {}
};

struct LpmAlgorithmConfig {
  double delta_percent = kFineGrainedDelta;  ///< 1 = fine-grained, 10 = coarse
  double margin_fraction = 0.5;  ///< delta = margin_fraction * T1 (paper: 50%)
  int max_iterations = 64;
  bool trim_overprovision = true;  ///< Case III is optional in the paper
  /// Let the tunable batch speculative candidate simulations each
  /// iteration (wall-clock win on multi-core engines; never changes the
  /// walk itself).
  bool prefetch_candidates = true;
};

struct LpmStep {
  int iteration = 0;
  LpmAction action = LpmAction::kDone;
  LpmObservation observation;  ///< measurement that led to the action
  bool applied = false;        ///< whether the tunable had a step available
};

struct LpmOutcome {
  std::vector<LpmStep> steps;
  LpmObservation final_observation;
  bool converged = false;  ///< reached Case IV (or Case III floor)
  bool exhausted = false;  ///< optimizer ran out of actions before converging
};

/// What run_two_stage produces: the cheap screening walk and the
/// authoritative confirmation walk. The confirmation walk alone decides the
/// final configuration — the screening stage only warms caches / narrows
/// the frontier — so `confirm` is exactly what a single-fidelity walk over
/// the confirm tunable would have produced.
struct LpmTwoStageOutcome {
  LpmOutcome screen;
  LpmOutcome confirm;
};

class LpmAlgorithm {
 public:
  explicit LpmAlgorithm(LpmAlgorithmConfig cfg);

  /// Classifies one observation into a Fig. 3 case.
  [[nodiscard]] LpmAction classify(const LpmObservation& obs) const;

  /// Runs the optimization loop to convergence or exhaustion.
  LpmOutcome run(LpmTunable& system) const;

  /// Multi-fidelity screen-then-confirm: run the walk over `screen` (a
  /// cheap, typically analytic tunable) first, then over `confirm` (the
  /// cycle-accurate tunable). Every decision of the confirm walk is made
  /// from its own measurements, so its outcome is identical to running
  /// run(confirm) alone; callers wire the screening trajectory into the
  /// confirm tunable as prefetch hints (see DesignSpaceExplorer::
  /// set_prefetch_hints) to convert the screening knowledge into batched,
  /// cache-warming simulations rather than into decisions.
  LpmTwoStageOutcome run_two_stage(LpmTunable& screen,
                                   LpmTunable& confirm) const;

  [[nodiscard]] const LpmAlgorithmConfig& config() const { return cfg_; }

 private:
  LpmAlgorithmConfig cfg_;
};

}  // namespace lpm::core
