// Online LPM control (paper SIV): "all the steps are conducted on-line to
// adapt to the dynamic behavior of the applications. The LPMR reduction
// algorithm is called periodically for each time interval."
//
// The controller watches a *running* System through the C-AMAT analyzer's
// interval snapshots, evaluates the Fig. 3 conditions on each interval's
// metrics, and reconfigures the live L1 (ports / MSHR limit) through the
// cache's runtime knobs - growing parallelism under mismatch, releasing it
// when over-provisioned. Each knob change is one reconfiguration operation
// at the paper's 4-cycle cost.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/lpm_algorithm.hpp"
#include "sim/system.hpp"

namespace lpm::core {

struct OnlineLpmConfig {
  Cycle interval_cycles = 2000;
  double delta_percent = kCoarseGrainedDelta;
  double margin_fraction = 0.5;  ///< Fig. 3's delta, as a fraction of T1
  std::uint32_t min_ports = 1;
  std::uint32_t max_ports = 8;
  std::uint32_t min_mshr = 1;
  /// CPIexe from an offline calibration (the one input the online counters
  /// cannot produce themselves).
  double cpi_exe = 0.25;

  static constexpr Cycle kReconfigCostCycles = 4;
};

struct OnlineIntervalRecord {
  Cycle at = 0;
  double lpmr1 = 0.0;
  double t1 = 0.0;
  LpmAction action = LpmAction::kDone;
  std::string detail;           ///< what was changed, if anything
  std::uint32_t ports = 0;      ///< knob values after the action
  std::uint32_t mshr_limit = 0;
};

class OnlineLpmController {
 public:
  explicit OnlineLpmController(OnlineLpmConfig cfg);

  /// Call once per simulated cycle, after system.step(); acts on interval
  /// boundaries. `core_idx` selects the monitored core/L1.
  void observe(sim::System& system, std::size_t core_idx = 0);

  [[nodiscard]] const std::vector<OnlineIntervalRecord>& history() const {
    return history_;
  }
  [[nodiscard]] std::uint64_t grow_actions() const { return grow_actions_; }
  [[nodiscard]] std::uint64_t release_actions() const { return release_actions_; }
  [[nodiscard]] std::uint64_t reconfiguration_cost_cycles() const {
    return (grow_actions_ + release_actions_) *
           OnlineLpmConfig::kReconfigCostCycles;
  }

 private:
  struct CoreSnapshot {
    std::uint64_t instructions = 0;
    std::uint64_t mem_active = 0;
    std::uint64_t overlap = 0;
    std::uint64_t stall = 0;
    std::uint64_t rejections = 0;
  };

  void act(sim::System& system, std::size_t core_idx,
           const camat::CamatMetrics& delta, const CoreSnapshot& d, Cycle now);

  OnlineLpmConfig cfg_;
  CoreSnapshot last_;
  std::vector<OnlineIntervalRecord> history_;
  std::uint64_t grow_actions_ = 0;
  std::uint64_t release_actions_ = 0;
};

}  // namespace lpm::core
