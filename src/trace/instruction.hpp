// Micro-op model: the unit of work flowing from a trace source into a core.
#pragma once

#include <cstdint>
#include <string>

#include "util/types.hpp"

namespace lpm::trace {

enum class OpType : std::uint8_t {
  kAlu,    ///< computation; occupies a functional unit for exec_latency cycles
  kLoad,   ///< memory read; completes when the hierarchy returns data
  kStore,  ///< memory write; retires once accepted by L1 (write-buffer style)
};

[[nodiscard]] inline bool is_memory(OpType t) {
  return t == OpType::kLoad || t == OpType::kStore;
}

[[nodiscard]] inline const char* to_string(OpType t) {
  switch (t) {
    case OpType::kAlu: return "alu";
    case OpType::kLoad: return "load";
    case OpType::kStore: return "store";
  }
  return "?";
}

/// One dynamic instruction. Dependences are encoded positionally: this op
/// cannot issue until the op `dep_dist` slots earlier in program order has
/// completed (0 = independent). A second dependence slot covers the common
/// address-generation + value pattern without a full register model.
struct MicroOp {
  OpType type = OpType::kAlu;
  Addr addr = 0;                 ///< byte address (loads/stores)
  std::uint32_t dep_dist = 0;    ///< primary dependence distance, 0 = none
  std::uint32_t dep_dist2 = 0;   ///< secondary dependence distance, 0 = none
  std::uint8_t exec_latency = 1; ///< ALU busy cycles (ignored for memory ops)

  /// Field-wise equality (replay round-trip tests, ddmin bookkeeping).
  friend bool operator==(const MicroOp&, const MicroOp&) = default;
};

}  // namespace lpm::trace
