// MmapTrace: zero-copy streaming replay of LPM2 trace files.
//
// The file is mmap()ed read-only once and records are decoded in place from
// the mapped bytes, so resident cost is bounded by the kernel's page cache
// policy (madvise(MADV_SEQUENTIAL) tells it to read ahead and drop behind),
// not by the trace size — a terabyte trace replays in a fixed memory
// footprint. Two delivery modes share one decode loop:
//
//   direct    — fill() decodes straight from the map into the caller's
//               buffer. No threads, no staging memory. Best for warm files
//               (already in page cache) and small traces.
//   pipelined — a background decoder thread fills two fixed MicroOp chunks
//               (double buffering: the consumer drains one slot while the
//               decoder refills the other), overlapping page-in + decode
//               with simulation. Resident cost: 2 * chunk_ops * sizeof(
//               MicroOp), ~3 MiB at the default chunk. Best for cold files.
//
// Both modes enforce the fill() contract exactly: fill() returns the full
// request unless the trace is exhausted, reset() replays an identical
// stream, and the content checksum is verified when the last record is
// consumed — a corrupt tail surfaces as util::IoError at the end of the
// drain, never as a silently short stream.
//
// open_trace() is the format-sniffing entry point: v1 "LPMT" files go to
// the legacy resident FileTrace, v2 "LPM2" files to MmapTrace, with the
// pipeline engaged automatically for files above a size threshold. Env
// knobs (documented in EXPERIMENTS.md): LPM_TRACE_PIPELINE=on|off|auto,
// LPM_TRACE_CHUNK_OPS, LPM_TRACE_PIPELINE_THRESHOLD (bytes).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "trace/lpm2.hpp"
#include "trace/trace_source.hpp"
#include "util/checksum.hpp"
#include "util/error.hpp"

namespace lpm::trace {

struct MmapTraceOptions {
  bool pipeline = false;             ///< decode on a background thread
  std::size_t chunk_ops = 1u << 16;  ///< ops per pipeline slot
};

class MmapTrace final : public TraceSource {
 public:
  using Options = MmapTraceOptions;

  /// Maps `path` (must be LPM2; v1 files load via FileTrace) and validates
  /// its header. Throws util::IoError on open/map failure or a corrupt
  /// header. `name` defaults to "mmap:<path>".
  explicit MmapTrace(const std::string& path, std::string name = "",
                     Options opts = Options());
  ~MmapTrace() override;

  MmapTrace(const MmapTrace&) = delete;
  MmapTrace& operator=(const MmapTrace&) = delete;

  bool next(MicroOp& op) override;
  std::size_t fill(MicroOp* dst, std::size_t n) override;
  void reset() override;
  [[nodiscard]] std::string name() const override { return name_; }

  [[nodiscard]] std::uint64_t size() const { return count_; }
  [[nodiscard]] std::uint64_t checksum() const { return header_checksum_; }
  [[nodiscard]] bool pipelined() const { return opts_.pipeline; }

 private:
  // One pipeline buffer. The decoder owns a slot while state == kFree and
  // publishes it with kReady; the consumer drains it and hands it back.
  struct Slot {
    std::vector<MicroOp> ops;
    std::size_t count = 0;     ///< decoded ops in this chunk
    std::size_t consumed = 0;  ///< consumer's cursor within the chunk
    bool ready = false;        ///< decoder has published, consumer may read
    bool last = false;         ///< chunk contains the final record (or error)
    util::ErrorCode error = util::ErrorCode::kNone;
    std::string error_message;
  };

  std::size_t fill_direct(MicroOp* dst, std::size_t n);
  std::size_t fill_pipelined(MicroOp* dst, std::size_t n);
  void verify_stream_checksum(std::uint64_t computed) const;
  void start_decoder();
  void stop_decoder();
  void decoder_main();
  [[noreturn]] void rethrow_failure() const;

  std::string path_;
  std::string name_;
  Options opts_;

  const unsigned char* map_ = nullptr;  ///< whole file, read-only
  std::size_t map_bytes_ = 0;
  const unsigned char* records_ = nullptr;  ///< first record byte
  std::uint64_t count_ = 0;
  std::uint64_t header_checksum_ = 0;

  // Direct-mode cursor + running content hash (verified at end-of-trace).
  std::uint64_t pos_ = 0;
  util::Checksum64 running_;
  bool verified_ = false;

  // Sticky failure: after a corruption throw, later calls rethrow the same
  // typed error instead of continuing into an inconsistent stream.
  util::ErrorCode failure_ = util::ErrorCode::kNone;
  std::string failure_message_;

  // Pipeline state (only touched when opts_.pipeline).
  std::mutex mu_;
  std::condition_variable slot_ready_cv_;   ///< decoder -> consumer
  std::condition_variable slot_free_cv_;    ///< consumer -> decoder
  Slot slots_[2];
  std::size_t consumer_slot_ = 0;
  bool stop_ = false;
  bool eof_ = false;
  std::thread decoder_;
};

/// Pipeline/chunk selection for open_trace(). Zero-valued fields fall back
/// to the LPM_TRACE_* environment knobs, then to built-in defaults.
struct OpenTraceOptions {
  enum class Pipeline { kAuto, kOn, kOff };
  Pipeline pipeline = Pipeline::kAuto;
  std::size_t chunk_ops = 0;                 ///< 0 = env or 65536
  std::uint64_t pipeline_threshold_bytes = 0;  ///< 0 = env or 8 MiB
};

/// Opens a recorded trace of either format: sniffs the magic and returns a
/// FileTrace (v1 "LPMT", fully resident) or an MmapTrace (v2 "LPM2",
/// streaming). For v2, the decode pipeline engages when the file size is at
/// or above the threshold (auto mode). Throws util::IoError for missing
/// files or unrecognized content.
[[nodiscard]] TraceSourcePtr open_trace(const std::string& path,
                                        std::string name = "",
                                        OpenTraceOptions opts = {});

}  // namespace lpm::trace
