#include "trace/mmap_trace.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "trace/trace_file.hpp"
#include "util/log.hpp"

namespace lpm::trace {

namespace {

constexpr std::size_t kDefaultChunkOps = 1u << 16;          // ~1.5 MiB/slot
constexpr std::uint64_t kDefaultPipelineThreshold = 8u << 20;  // 8 MiB

[[noreturn]] void fail_io(const std::string& what, const std::string& path) {
  throw util::IoError(what + " in " + path);
}

/// Parses an unsigned env knob; returns `fallback` (warning once per call)
/// when the variable is unset, empty, or not a positive integer.
std::uint64_t env_uint_or(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (errno != 0 || end == raw || *end != '\0' || v == 0) {
    util::log_warn() << name << "='" << raw << "' is not a positive integer; using "
                     << fallback;
    return fallback;
  }
  return v;
}

OpenTraceOptions::Pipeline env_pipeline_or(OpenTraceOptions::Pipeline fallback) {
  const char* raw = std::getenv("LPM_TRACE_PIPELINE");
  if (raw == nullptr || *raw == '\0') return fallback;
  const std::string v(raw);
  if (v == "on" || v == "1" || v == "true") return OpenTraceOptions::Pipeline::kOn;
  if (v == "off" || v == "0" || v == "false") return OpenTraceOptions::Pipeline::kOff;
  if (v == "auto") return OpenTraceOptions::Pipeline::kAuto;
  util::log_warn() << "LPM_TRACE_PIPELINE='" << v << "' is not on/off/auto; using auto";
  return fallback;
}

}  // namespace

MmapTrace::MmapTrace(const std::string& path, std::string name, Options opts)
    : path_(path),
      name_(name.empty() ? "mmap:" + path : std::move(name)),
      opts_(opts) {
  if (opts_.chunk_ops == 0) opts_.chunk_ops = kDefaultChunkOps;

  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) fail_io("mmap trace: cannot open (" + std::string(std::strerror(errno)) + ")", path);

  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    const int err = errno;
    ::close(fd);
    fail_io("mmap trace: fstat failed (" + std::string(std::strerror(err)) + ")", path);
  }
  const auto file_bytes = static_cast<std::uint64_t>(st.st_size);
  if (file_bytes < kLpm2HeaderBytes) {
    ::close(fd);
    fail_io("trace: file too small for an LPM2 header", path);
  }

  void* map = ::mmap(nullptr, file_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference to the file
  if (map == MAP_FAILED) {
    fail_io("mmap trace: mmap failed (" + std::string(std::strerror(errno)) + ")", path);
  }
  map_ = static_cast<const unsigned char*>(map);
  map_bytes_ = file_bytes;
  // Advisory only: tells the kernel to read ahead aggressively and drop
  // pages behind the cursor, which is what bounds resident cost on traces
  // larger than memory. A failure is harmless.
  (void)::madvise(map, file_bytes, MADV_SEQUENTIAL);

  TraceFileInfo info;
  try {
    info = parse_lpm2_header(map_, file_bytes, path);
  } catch (...) {
    ::munmap(const_cast<unsigned char*>(map_), map_bytes_);
    map_ = nullptr;
    throw;
  }
  records_ = map_ + kLpm2HeaderBytes;
  count_ = info.count;
  header_checksum_ = info.checksum;

  if (opts_.pipeline) start_decoder();
}

MmapTrace::~MmapTrace() {
  stop_decoder();
  if (map_ != nullptr) ::munmap(const_cast<unsigned char*>(map_), map_bytes_);
}

void MmapTrace::rethrow_failure() const {
  util::throw_error(failure_, failure_message_);
}

bool MmapTrace::next(MicroOp& op) { return fill(&op, 1) == 1; }

std::size_t MmapTrace::fill(MicroOp* dst, std::size_t n) {
  if (failure_ != util::ErrorCode::kNone) rethrow_failure();
  if (n == 0) return 0;
  return opts_.pipeline ? fill_pipelined(dst, n) : fill_direct(dst, n);
}

void MmapTrace::verify_stream_checksum(std::uint64_t computed) const {
  if (computed != header_checksum_) {
    throw util::IoError("trace: content checksum mismatch in " + path_ +
                        " (header says " + std::to_string(header_checksum_) +
                        ", records hash to " + std::to_string(computed) +
                        ") — corrupt record payload");
  }
}

std::size_t MmapTrace::fill_direct(MicroOp* dst, std::size_t n) {
  const std::uint64_t remaining = count_ - pos_;
  const auto take = static_cast<std::size_t>(
      std::min<std::uint64_t>(n, remaining));
  const unsigned char* src = records_ + pos_ * kLpm2RecordBytes;
  try {
    for (std::size_t i = 0; i < take; ++i) {
      dst[i] = decode_record(src + i * kLpm2RecordBytes);
    }
    running_.update(src, take * kLpm2RecordBytes);
    pos_ += take;
    if (pos_ == count_ && !verified_) {
      verified_ = true;
      verify_stream_checksum(running_.digest());
    }
  } catch (const util::LpmError& e) {
    failure_ = e.code();
    failure_message_ = e.what();
    throw;
  }
  return take;
}

std::size_t MmapTrace::fill_pipelined(MicroOp* dst, std::size_t n) {
  std::size_t produced = 0;
  std::unique_lock<std::mutex> lk(mu_);
  while (produced < n && !eof_) {
    Slot& slot = slots_[consumer_slot_];
    slot_ready_cv_.wait(lk, [&] { return slot.ready; });
    const std::size_t take = std::min(slot.count - slot.consumed, n - produced);
    std::copy_n(slot.ops.data() + slot.consumed, take, dst + produced);
    slot.consumed += take;
    produced += take;
    if (slot.consumed == slot.count) {
      if (slot.error != util::ErrorCode::kNone) {
        // The decoder hit corruption (bad record or checksum mismatch at
        // end-of-stream). Deliveries stop here: surface the typed error on
        // the consuming thread and stay failed.
        failure_ = slot.error;
        failure_message_ = slot.error_message;
        eof_ = true;
        lk.unlock();
        rethrow_failure();
      }
      if (slot.last) {
        eof_ = true;
        break;
      }
      slot.ready = false;
      slot.consumed = 0;
      slot.count = 0;
      consumer_slot_ ^= 1u;
      slot_free_cv_.notify_one();
    }
  }
  return produced;
}

void MmapTrace::start_decoder() {
  for (Slot& slot : slots_) {
    slot.ops.resize(opts_.chunk_ops);
    slot.count = 0;
    slot.consumed = 0;
    slot.ready = false;
    slot.last = false;
    slot.error = util::ErrorCode::kNone;
    slot.error_message.clear();
  }
  consumer_slot_ = 0;
  stop_ = false;
  eof_ = false;
  decoder_ = std::thread(&MmapTrace::decoder_main, this);
}

void MmapTrace::stop_decoder() {
  if (!decoder_.joinable()) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  slot_free_cv_.notify_all();
  decoder_.join();
}

void MmapTrace::decoder_main() {
  std::uint64_t cursor = 0;
  util::Checksum64 checksum;
  std::size_t produce_slot = 0;
  bool done = false;
  while (!done) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      slot_free_cv_.wait(lk, [&] { return stop_ || !slots_[produce_slot].ready; });
      if (stop_) return;
    }
    // The slot is owned by this thread while !ready, so decode outside the
    // lock — this is the overlap the pipeline exists for.
    Slot& slot = slots_[produce_slot];
    const std::uint64_t remaining = count_ - cursor;
    const auto batch = static_cast<std::size_t>(
        std::min<std::uint64_t>(remaining, opts_.chunk_ops));
    std::size_t decoded = 0;
    util::ErrorCode error = util::ErrorCode::kNone;
    std::string error_message;
    try {
      const unsigned char* src = records_ + cursor * kLpm2RecordBytes;
      for (; decoded < batch; ++decoded) {
        slot.ops[decoded] = decode_record(src + decoded * kLpm2RecordBytes);
      }
      checksum.update(src, batch * kLpm2RecordBytes);
      cursor += batch;
      if (cursor == count_) verify_stream_checksum(checksum.digest());
    } catch (const util::LpmError& e) {
      error = e.code();
      error_message = e.what();
    } catch (const std::exception& e) {
      error = util::ErrorCode::kSim;
      error_message = std::string("trace decoder: ") + e.what();
    }
    done = cursor == count_ || error != util::ErrorCode::kNone;
    {
      std::lock_guard<std::mutex> lk(mu_);
      slot.count = decoded;
      slot.consumed = 0;
      slot.error = error;
      slot.error_message = std::move(error_message);
      slot.last = done;
      slot.ready = true;
    }
    slot_ready_cv_.notify_one();
    produce_slot ^= 1u;
  }
}

void MmapTrace::reset() {
  stop_decoder();
  pos_ = 0;
  running_ = util::Checksum64();
  verified_ = false;
  // A rewind clears sticky failure: the replay is deterministic, so a
  // corrupt file simply fails at the same record again.
  failure_ = util::ErrorCode::kNone;
  failure_message_.clear();
  eof_ = false;
  if (opts_.pipeline) start_decoder();
}

TraceSourcePtr open_trace(const std::string& path, std::string name,
                          OpenTraceOptions opts) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) fail_io("trace: cannot open", path);
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  if (!in.good()) fail_io("trace: file too small for a magic", path);
  in.seekg(0, std::ios::end);
  const std::streamoff end = in.tellg();
  if (end < 0) fail_io("trace: cannot size file", path);
  const auto file_bytes = static_cast<std::uint64_t>(end);
  in.close();

  if (std::memcmp(magic, "LPMT", 4) == 0) {
    // Legacy resident path: the whole trace is materialized in memory.
    return name.empty() ? std::make_unique<FileTrace>(path)
                        : std::make_unique<FileTrace>(path, std::move(name));
  }
  if (std::memcmp(magic, "LPM2", 4) == 0) {
    OpenTraceOptions::Pipeline mode = opts.pipeline;
    if (mode == OpenTraceOptions::Pipeline::kAuto) {
      mode = env_pipeline_or(OpenTraceOptions::Pipeline::kAuto);
    }
    const std::uint64_t threshold =
        opts.pipeline_threshold_bytes != 0
            ? opts.pipeline_threshold_bytes
            : env_uint_or("LPM_TRACE_PIPELINE_THRESHOLD", kDefaultPipelineThreshold);
    const std::size_t chunk_ops =
        opts.chunk_ops != 0
            ? opts.chunk_ops
            : static_cast<std::size_t>(
                  env_uint_or("LPM_TRACE_CHUNK_OPS", kDefaultChunkOps));
    MmapTrace::Options mopts;
    mopts.chunk_ops = chunk_ops;
    switch (mode) {
      case OpenTraceOptions::Pipeline::kOn: mopts.pipeline = true; break;
      case OpenTraceOptions::Pipeline::kOff: mopts.pipeline = false; break;
      case OpenTraceOptions::Pipeline::kAuto:
        mopts.pipeline = file_bytes >= threshold;
        break;
    }
    return std::make_unique<MmapTrace>(path, std::move(name), mopts);
  }
  fail_io("trace: unrecognized magic (not LPMT or LPM2)", path);
}

}  // namespace lpm::trace
