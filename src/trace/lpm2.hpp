// LPM2: the streaming on-disk trace format.
//
// Layout (all fields little-endian):
//   offset  0: magic "LPM2"
//   offset  4: u32 version        (= 2)
//   offset  8: u64 count          (number of records)
//   offset 16: u64 checksum       (Checksum64 over the raw record bytes)
//   offset 24: u32 record_bytes   (= 18; rejects readers on layout drift)
//   offset 28: u32 reserved       (= 0)
//   offset 32: count * 18-byte records, same record layout as v1 "LPMT":
//              u8 type | u8 exec_latency | u32 dep_dist | u32 dep_dist2 | u64 addr
//
// Design notes:
//   - Records are fixed-size and decodable in place, so MmapTrace can
//     translate mapped bytes straight into MicroOps without an intermediate
//     parse buffer.
//   - The checksum covers record bytes only (not the header), which lets the
//     writer stream records single-pass and patch count+checksum at the end.
//     Count integrity does not depend on the checksum: a valid file's size
//     must be exactly 32 + 18*count, so every truncation and every count
//     bit-flip is caught at open() time before any allocation.
//   - v1 "LPMT" files remain loadable through the legacy resident path
//     (trace_file.hpp); open_trace() in mmap_trace.hpp sniffs the magic and
//     dispatches. Both formats share the record layout, so a v1 and v2
//     recording of the same stream have the same content checksum.
//
// All corruption surfaces as typed util::IoError — never UB, OOM, or a
// silently short stream.
#pragma once

#include <cstdint>
#include <string>

#include "trace/trace_source.hpp"
#include "trace/workload_profile.hpp"
#include "util/error.hpp"

namespace lpm::trace {

inline constexpr std::size_t kLpm2HeaderBytes = 32;
inline constexpr std::size_t kLpm2RecordBytes = 18;
inline constexpr std::uint32_t kLpm2Version = 2;

/// Parsed + validated header of a trace file on disk (either format).
struct TraceFileInfo {
  std::uint32_t version = 0;   ///< 1 = legacy "LPMT", 2 = "LPM2"
  std::uint64_t count = 0;     ///< records in the file
  std::uint64_t checksum = 0;  ///< content checksum over the record bytes
  std::uint64_t file_bytes = 0;
};

/// Encodes one MicroOp into `dst` (exactly kLpm2RecordBytes bytes).
void encode_record(const MicroOp& op, unsigned char* dst);

/// Decodes one record from `src` (exactly kLpm2RecordBytes bytes).
/// Throws util::IoError if the type byte is out of range.
[[nodiscard]] MicroOp decode_record(const unsigned char* src);

/// Writes every op of `source` (current position to exhaustion) to `path`
/// in LPM2 format, streaming: resident cost is one fixed write buffer, not
/// the trace. Returns the content checksum of the recorded stream. Throws
/// util::IoError on I/O failure.
std::uint64_t record_trace_v2(TraceSource& source, const std::string& path);

/// Validates an LPM2 header from an in-memory byte range (the first
/// kLpm2HeaderBytes of the file, e.g. the head of a mapped region).
/// `file_bytes` is the full on-disk size, checked to be exactly
/// header + count * record_bytes — which makes the count self-validating
/// against truncation and bit-flips. Throws util::IoError on any mismatch;
/// `path` only decorates the error message.
[[nodiscard]] TraceFileInfo parse_lpm2_header(const unsigned char* header,
                                              std::uint64_t file_bytes,
                                              const std::string& path);

/// Reads and validates the header of `path` (v1 or v2) without touching the
/// record payload. For v2 the checksum comes from the header (not verified
/// against the records — use verify_trace for that); for v1, which stores
/// no checksum, the records are streamed once to compute it. Throws
/// util::IoError on bad magic, bad header fields, or a file size that does
/// not match the declared count.
[[nodiscard]] TraceFileInfo inspect_trace(const std::string& path);

/// Full-file validation: everything inspect_trace checks, plus a streaming
/// scan of every record (type bytes in range) and, for v2, comparison of
/// the recomputed content checksum against the header. Returns the info
/// with `checksum` set to the verified/computed value. Throws util::IoError
/// on any mismatch.
TraceFileInfo verify_trace(const std::string& path);

/// Builds a file-backed WorkloadProfile for a recorded trace (either
/// format): probes the header, fills in `length` (record count),
/// `trace_path`, and `trace_checksum`. `name` defaults to the file's
/// basename. Throws util::IoError on a missing/corrupt file and
/// util::ConfigError for an empty recording (nothing to simulate).
[[nodiscard]] WorkloadProfile trace_file_profile(const std::string& path,
                                                 std::string name = "");

}  // namespace lpm::trace
