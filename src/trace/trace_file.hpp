// Binary trace file format v1 ("LPMT"): record a TraceSource once, replay
// it from disk — the *resident* tier of the two-tier ingestion story.
//
// Layout (little-endian):
//   magic "LPMT" | u32 version | u64 count | count * packed MicroOp records
// Record: u8 type | u8 exec_latency | u32 dep_dist | u32 dep_dist2 | u64 addr
//
// Memory contract, by tier:
//   v1 (this header)  — the whole trace is materialized into one
//     std::vector<MicroOp> at load and stays resident for the lifetime of
//     the FileTrace (~24 B per record on LP64). Simple and fast for traces
//     that fit comfortably in memory; it cannot replay a trace larger than
//     RAM, and it stores no content checksum.
//   v2 "LPM2" (lpm2.hpp + mmap_trace.hpp) — streaming: the file is mmap()ed
//     read-only and decoded in place, so resident cost is bounded (page
//     cache + at most two pipeline chunks), independent of trace size, and
//     the payload is integrity-checked by a content checksum at end of
//     stream. Prefer it for anything new; `lpm_trace convert` and
//     record_trace_v2() migrate v1 recordings.
//
// open_trace() (mmap_trace.hpp) sniffs the magic and picks the right tier,
// so consumers do not dispatch on format themselves. Both formats share the
// record layout, and a v1 file's content checksum (computed on inspection)
// equals the v2 checksum of the same stream — file-backed workload
// fingerprints are format-independent.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "trace/trace_source.hpp"

namespace lpm::trace {

/// Writes every op of `source` (from its current position to exhaustion) to
/// `path`. Returns the number of ops written. Throws util::LpmError on I/O
/// failure.
std::uint64_t record_trace(TraceSource& source, const std::string& path);

/// Loads a recorded trace fully into memory.
///
/// Memory contract: the entire trace is materialized as a single
/// std::vector<MicroOp> (sizeof(MicroOp) per record, ~24 B on LP64), so a
/// trace of N ops costs ~24*N bytes of resident memory for the lifetime of
/// the vector — there is no streaming replay path. The header's `count`
/// field is validated against the file's actual size before any allocation:
/// a corrupt or hostile count larger than the bytes present throws a typed
/// util::IoError instead of driving an uncontrolled reserve().
///
/// Throws util::IoError on corrupt headers/counts and util::LpmError
/// (ConfigError) on other malformed content.
[[nodiscard]] std::vector<MicroOp> load_trace(const std::string& path);

/// A TraceSource replaying a file loaded via load_trace(). Inherits that
/// function's memory contract: the whole trace stays resident in ops_.
class FileTrace final : public TraceSource {
 public:
  explicit FileTrace(const std::string& path, std::string name = "file-trace")
      : name_(std::move(name)), ops_(load_trace(path)) {}

  bool next(MicroOp& op) override {
    if (pos_ >= ops_.size()) return false;
    op = ops_[pos_++];
    return true;
  }
  std::size_t fill(MicroOp* dst, std::size_t n) override {
    const std::size_t take = std::min(n, ops_.size() - pos_);
    std::copy_n(ops_.begin() + static_cast<std::ptrdiff_t>(pos_), take, dst);
    pos_ += take;
    return take;
  }
  void reset() override { pos_ = 0; }
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::size_t size() const { return ops_.size(); }

 private:
  std::string name_;
  std::vector<MicroOp> ops_;
  std::size_t pos_ = 0;
};

}  // namespace lpm::trace
