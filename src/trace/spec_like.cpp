#include "trace/spec_like.hpp"

#include "trace/lpm2.hpp"
#include "trace/mmap_trace.hpp"
#include "util/error.hpp"

namespace lpm::trace {

const std::vector<SpecBenchmark>& all_spec_benchmarks() {
  static const std::vector<SpecBenchmark> kAll = {
      SpecBenchmark::kPerlbench, SpecBenchmark::kBzip2,
      SpecBenchmark::kGcc,       SpecBenchmark::kBwaves,
      SpecBenchmark::kGamess,    SpecBenchmark::kMcf,
      SpecBenchmark::kMilc,      SpecBenchmark::kZeusmp,
      SpecBenchmark::kGromacs,   SpecBenchmark::kLeslie3d,
      SpecBenchmark::kNamd,      SpecBenchmark::kGobmk,
      SpecBenchmark::kSoplex,    SpecBenchmark::kHmmer,
      SpecBenchmark::kSjeng,     SpecBenchmark::kLibquantum,
  };
  return kAll;
}

std::string spec_name(SpecBenchmark b) {
  switch (b) {
    case SpecBenchmark::kPerlbench: return "400.perlbench";
    case SpecBenchmark::kBzip2: return "401.bzip2";
    case SpecBenchmark::kGcc: return "403.gcc";
    case SpecBenchmark::kBwaves: return "410.bwaves";
    case SpecBenchmark::kGamess: return "416.gamess";
    case SpecBenchmark::kMcf: return "429.mcf";
    case SpecBenchmark::kMilc: return "433.milc";
    case SpecBenchmark::kZeusmp: return "434.zeusmp";
    case SpecBenchmark::kGromacs: return "435.gromacs";
    case SpecBenchmark::kLeslie3d: return "437.leslie3d";
    case SpecBenchmark::kNamd: return "444.namd";
    case SpecBenchmark::kGobmk: return "445.gobmk";
    case SpecBenchmark::kSoplex: return "450.soplex";
    case SpecBenchmark::kHmmer: return "456.hmmer";
    case SpecBenchmark::kSjeng: return "458.sjeng";
    case SpecBenchmark::kLibquantum: return "462.libquantum";
  }
  throw util::LpmError("spec_name: unknown benchmark");
}

WorkloadProfile spec_profile(SpecBenchmark b, std::uint64_t length,
                             std::uint64_t seed) {
  WorkloadProfile p;
  p.name = spec_name(b);
  p.length = length;
  p.seed = seed;

  constexpr std::uint64_t KiB = 1024;
  constexpr std::uint64_t MiB = 1024 * 1024;

  switch (b) {
    case SpecBenchmark::kPerlbench:
      // Branchy integer code with a warm medium-size footprint.
      p.fmem = 0.34; p.working_set_bytes = 32 * KiB; p.zipf_skew = 0.9;
      p.seq_fraction = 0.30; p.num_streams = 2; p.stride_bytes = 16;
      p.alu_dep_fraction = 0.6; p.load_use_fraction = 0.5;
      break;
    case SpecBenchmark::kBzip2:
      // Tiny hot working set: already served by a 4 KB L1.
      p.fmem = 0.36; p.working_set_bytes = 3 * KiB; p.zipf_skew = 1.1;
      p.seq_fraction = 0.55; p.num_streams = 2; p.stride_bytes = 8;
      break;
    case SpecBenchmark::kGcc:
      // Large irregular footprint: every L1 size step up to 64 KB helps.
      p.fmem = 0.40; p.working_set_bytes = 60 * KiB; p.zipf_skew = 0.35;
      p.seq_fraction = 0.25; p.num_streams = 3; p.stride_bytes = 24;
      p.alu_dep_fraction = 0.55;
      break;
    case SpecBenchmark::kBwaves:
      // Many independent FP streams walking whole cache blocks (row-major
      // leaps through multi-dimensional arrays): almost every stream access
      // is an L1 miss, but the footprint lives in the L2, so MSHRs, ports
      // and window depth convert directly into overlap. Table I uses this
      // one because added hardware parallelism pays off layer by layer.
      p.fmem = 0.46; p.working_set_bytes = 256 * KiB; p.zipf_skew = 0.9;
      p.seq_fraction = 0.97; p.num_streams = 4; p.stride_bytes = 8;
      p.alu_latency = 2; p.alu_dep_fraction = 0.5; p.load_use_fraction = 0.25;
      break;
    case SpecBenchmark::kGamess:
      // Strong reuse; a bigger private L1 visibly cuts L2 bandwidth demand.
      p.fmem = 0.38; p.working_set_bytes = 48 * KiB; p.zipf_skew = 0.55;
      p.seq_fraction = 0.45; p.num_streams = 3; p.stride_bytes = 8;
      break;
    case SpecBenchmark::kMcf:
      // Pointer chasing across a big graph: dependent misses, low MLP; its
      // hot node set is captured at the first L1 size step.
      p.fmem = 0.42; p.working_set_bytes = 4 * MiB; p.zipf_skew = 0.95;
      p.seq_fraction = 0.05; p.num_streams = 1; p.stride_bytes = 64;
      p.pointer_chase_fraction = 0.7; p.load_use_fraction = 0.7;
      break;
    case SpecBenchmark::kMilc:
      // Huge streaming footprint with little reuse: L1 size insensitive.
      p.fmem = 0.44; p.working_set_bytes = 16 * MiB; p.zipf_skew = 0.05;
      p.seq_fraction = 0.80; p.num_streams = 4; p.stride_bytes = 16;
      p.alu_dep_fraction = 0.35;
      break;
    case SpecBenchmark::kZeusmp:
      // Stencil FP: several regular streams plus neighborhood reuse.
      p.fmem = 0.40; p.working_set_bytes = 2 * MiB; p.zipf_skew = 0.4;
      p.seq_fraction = 0.70; p.num_streams = 6; p.stride_bytes = 8;
      p.alu_dep_fraction = 0.3;
      break;
    case SpecBenchmark::kGromacs:
      // Compute-bound MD inner loops over a small particle set.
      p.fmem = 0.24; p.working_set_bytes = 24 * KiB; p.zipf_skew = 0.7;
      p.seq_fraction = 0.5; p.num_streams = 2; p.stride_bytes = 8;
      p.alu_latency = 3; p.alu_dep_fraction = 0.45;
      break;
    case SpecBenchmark::kLeslie3d:
      // Streaming FP with moderate reuse.
      p.fmem = 0.42; p.working_set_bytes = 4 * MiB; p.zipf_skew = 0.3;
      p.seq_fraction = 0.75; p.num_streams = 5; p.stride_bytes = 8;
      p.alu_dep_fraction = 0.3;
      break;
    case SpecBenchmark::kNamd:
      // Very cache-friendly compute: tiny hot set, long ALU chains.
      p.fmem = 0.22; p.working_set_bytes = 16 * KiB; p.zipf_skew = 0.9;
      p.seq_fraction = 0.55; p.num_streams = 2; p.stride_bytes = 8;
      p.alu_latency = 2; p.alu_dep_fraction = 0.5;
      break;
    case SpecBenchmark::kGobmk:
      // Irregular integer with a board-sized footprint.
      p.fmem = 0.32; p.working_set_bytes = 20 * KiB; p.zipf_skew = 0.6;
      p.seq_fraction = 0.2; p.num_streams = 2; p.stride_bytes = 32;
      p.alu_dep_fraction = 0.65;
      break;
    case SpecBenchmark::kSoplex:
      // Sparse linear algebra: scattered accesses over a large matrix.
      p.fmem = 0.44; p.working_set_bytes = 2 * MiB; p.zipf_skew = 0.45;
      p.seq_fraction = 0.35; p.num_streams = 3; p.stride_bytes = 40;
      p.pointer_chase_fraction = 0.15;
      break;
    case SpecBenchmark::kHmmer:
      // Small hot score tables: extremely cache friendly.
      p.fmem = 0.38; p.working_set_bytes = 8 * KiB; p.zipf_skew = 0.8;
      p.seq_fraction = 0.6; p.num_streams = 2; p.stride_bytes = 8;
      break;
    case SpecBenchmark::kSjeng:
      // Game-tree search: medium footprint, hash-table scatter.
      p.fmem = 0.30; p.working_set_bytes = 48 * KiB; p.zipf_skew = 0.5;
      p.seq_fraction = 0.15; p.num_streams = 2; p.stride_bytes = 48;
      p.alu_dep_fraction = 0.6;
      break;
    case SpecBenchmark::kLibquantum:
      // One long vector stream, very memory intense, trivially prefetchable.
      p.fmem = 0.48; p.working_set_bytes = 8 * MiB; p.zipf_skew = 0.05;
      p.seq_fraction = 0.92; p.num_streams = 1; p.stride_bytes = 16;
      p.alu_dep_fraction = 0.2; p.load_use_fraction = 0.3;
      break;
  }
  p.validate();
  return p;
}

WorkloadProfile burst_profile(std::uint64_t phase_length, double burst_duty,
                              std::uint64_t length, std::uint64_t seed) {
  WorkloadProfile p;
  p.name = "burst";
  p.fmem = 0.18;
  p.working_set_bytes = 1 << 20;
  p.zipf_skew = 0.8;
  p.seq_fraction = 0.6;
  p.num_streams = 4;
  p.phase_length = phase_length;
  p.burst_duty = burst_duty;
  p.burst_fmem = 0.85;
  // Bursts are dense but cache-friendly (a sudden sweep over hot data), so
  // they are short in wall-clock cycles - the regime where the measurement
  // interval races the burst (paper SV).
  p.burst_seq_fraction = 0.85;
  p.length = length;
  p.seed = seed;
  p.validate();
  return p;
}

TraceSourcePtr make_trace(const WorkloadProfile& profile) {
  if (profile.file_backed()) {
    profile.validate();
    // Re-probe the header before replaying: the fingerprint memoized on the
    // content checksum, so a file that changed on disk since the profile
    // was built must fail loudly here, not silently simulate a different
    // stream under the old cache key. (Header-only for v2 — cheap.)
    const TraceFileInfo info = inspect_trace(profile.trace_path);
    if (info.checksum != profile.trace_checksum) {
      throw util::IoError("make_trace: " + profile.trace_path +
                          " changed on disk (checksum " +
                          std::to_string(info.checksum) + ", profile expects " +
                          std::to_string(profile.trace_checksum) + ")");
    }
    return open_trace(profile.trace_path, profile.name);
  }
  return std::make_unique<SyntheticTrace>(profile);
}

}  // namespace lpm::trace
