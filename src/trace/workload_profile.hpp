// Parameter block describing a synthetic workload's locality and concurrency
// behaviour. This is our substitute for SPEC CPU2006 traces (see DESIGN.md):
// the paper uses SPEC only as a source of diverse working-set sizes, reuse
// behaviour, stride patterns, dependence structure (MLP) and burstiness, and
// those are exactly the knobs exposed here.
#pragma once

#include <cstdint>
#include <string>

namespace lpm::trace {

struct WorkloadProfile {
  std::string name = "unnamed";

  // --- instruction mix ---
  double fmem = 0.3;            ///< fraction of memory micro-ops
  double store_fraction = 0.3;  ///< stores among memory ops
  std::uint8_t alu_latency = 1; ///< execution latency of ALU ops
  double alu_dep_fraction = 0.5;///< ALU ops depending on the previous op (ILP limiter)

  // --- locality ---
  std::uint64_t working_set_bytes = 1 << 20;  ///< footprint of the address pool
  double zipf_skew = 0.6;       ///< temporal locality: block popularity skew (0 = uniform)
  double seq_fraction = 0.5;    ///< spatial locality: accesses continuing a stream
  std::uint32_t num_streams = 4;///< concurrent sequential streams
  std::uint64_t stride_bytes = 8; ///< stream advance per access

  // --- concurrency structure ---
  double pointer_chase_fraction = 0.0;  ///< loads depending on the previous load (MLP killer)
  double load_use_fraction = 0.5;       ///< ALU ops that consume the most recent load

  // --- phase / burst behaviour (Sherwood-style periodic phases) ---
  std::uint64_t phase_length = 0;  ///< micro-ops per phase; 0 disables phases
  double burst_duty = 0.0;         ///< fraction of phases that are memory bursts
  double burst_fmem = 0.8;         ///< fmem during a burst phase
  double burst_seq_fraction = 0.1; ///< seq_fraction during a burst phase

  std::uint64_t length = 100000;   ///< micro-ops per trace replay
  std::uint64_t seed = 1;          ///< RNG seed (combined with core id by callers)
  /// Base physical address of this program's footprint. Co-scheduled
  /// programs must use disjoint bases (distinct physical pages) or they
  /// would constructively share the LLC.
  std::uint64_t addr_base = 0;

  // --- recorded-trace replay (LPM2/LPMT files) ---
  /// When non-empty, the workload replays this recorded trace file instead
  /// of generating ops synthetically; the synthetic knobs above are ignored
  /// and `length` holds the record count. Build via trace_file_profile()
  /// (lpm2.hpp), which probes the file and fills in count + checksum.
  std::string trace_path;
  /// Content checksum of the recorded stream (Checksum64 over record
  /// bytes; never 0 for a real file). This — not the path — is what
  /// fingerprinting folds in, so the memo cache and shard routing key on
  /// what the trace *is*, not where it happens to live.
  std::uint64_t trace_checksum = 0;

  /// True when the workload replays a recorded trace file.
  [[nodiscard]] bool file_backed() const { return !trace_path.empty(); }

  /// Throws util::LpmError when a field is out of range.
  void validate() const;
};

}  // namespace lpm::trace
