// Deterministic synthetic instruction stream driven by a WorkloadProfile.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "trace/trace_source.hpp"
#include "trace/workload_profile.hpp"
#include "util/rng.hpp"

namespace lpm::trace {

/// Generates micro-ops with controlled temporal locality (Zipf block
/// popularity), spatial locality (sequential streams), dependence structure
/// (pointer chasing, load-use, ALU chains) and periodic burst phases.
/// Fully deterministic: reset() replays the identical stream.
class SyntheticTrace final : public TraceSource {
 public:
  explicit SyntheticTrace(WorkloadProfile profile);

  bool next(MicroOp& op) override;
  std::size_t fill(MicroOp* dst, std::size_t n) override;
  void reset() override;
  [[nodiscard]] std::string name() const override { return profile_.name; }

  [[nodiscard]] const WorkloadProfile& profile() const { return profile_; }

  /// Number of micro-ops emitted since the last reset.
  [[nodiscard]] std::uint64_t emitted() const { return emitted_; }

  /// True when phase `phase_idx` of this profile is a burst phase. Pure
  /// function of (seed, phase_idx): benches use it as ground truth for the
  /// interval-sensitivity experiment.
  [[nodiscard]] static bool is_burst_phase(const WorkloadProfile& profile,
                                           std::uint64_t phase_idx);

 private:
  struct PhaseParams {
    double fmem;
    double seq_fraction;
  };

  [[nodiscard]] PhaseParams current_phase_params() const;
  [[nodiscard]] Addr sample_address(double seq_fraction);
  /// Emits one micro-op (shared body of next() and fill()).
  void generate(MicroOp& op);

  WorkloadProfile profile_;
  util::Rng rng_;
  std::vector<Addr> stream_pos_;
  util::ZipfSampler block_sampler_;
  std::uint64_t emitted_ = 0;
  std::uint64_t last_load_index_ = ~std::uint64_t{0};
};

/// A trace that replays a fixed vector of micro-ops; handy for unit tests
/// and for the Fig. 1 replay example.
class VectorTrace final : public TraceSource {
 public:
  VectorTrace(std::string name, std::vector<MicroOp> ops)
      : name_(std::move(name)), ops_(std::move(ops)) {}

  bool next(MicroOp& op) override {
    if (pos_ >= ops_.size()) return false;
    op = ops_[pos_++];
    return true;
  }
  std::size_t fill(MicroOp* dst, std::size_t n) override {
    const std::size_t take = std::min(n, ops_.size() - pos_);
    std::copy_n(ops_.begin() + static_cast<std::ptrdiff_t>(pos_), take, dst);
    pos_ += take;
    return take;
  }
  void reset() override { pos_ = 0; }
  [[nodiscard]] std::string name() const override { return name_; }

  [[nodiscard]] const std::vector<MicroOp>& ops() const { return ops_; }

 private:
  std::string name_;
  std::vector<MicroOp> ops_;
  std::size_t pos_ = 0;
};

}  // namespace lpm::trace
