#include "trace/lpm2.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <vector>

#include "util/checksum.hpp"

namespace lpm::trace {

namespace {

constexpr std::array<char, 4> kMagicV2 = {'L', 'P', 'M', '2'};
constexpr std::array<char, 4> kMagicV1 = {'L', 'P', 'M', 'T'};
constexpr std::size_t kV1HeaderBytes = 4 + 4 + 8;

// Records are hashed and written in batches of this many ops.
constexpr std::size_t kIoBatchOps = 4096;

void put_u32(unsigned char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = (v >> (8 * i)) & 0xff;
}

void put_u64(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = (v >> (8 * i)) & 0xff;
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw util::IoError(what + " in " + path);
}

std::uint64_t stream_size(std::istream& in, const std::string& path) {
  in.seekg(0, std::ios::end);
  const std::streamoff end = in.tellg();
  if (!in.good() || end < 0) fail("trace: cannot size file", path);
  in.seekg(0);
  return static_cast<std::uint64_t>(end);
}

/// Streams the record payload of an open file, feeding each record's raw
/// bytes to `checksum` and (when `validate_types`) checking the type byte.
void scan_records(std::istream& in, const std::string& path, std::uint64_t count,
                  util::Checksum64& checksum, bool validate_types) {
  std::vector<unsigned char> buf(kIoBatchOps * kLpm2RecordBytes);
  std::uint64_t remaining = count;
  while (remaining > 0) {
    const std::size_t batch =
        static_cast<std::size_t>(std::min<std::uint64_t>(remaining, kIoBatchOps));
    const std::size_t bytes = batch * kLpm2RecordBytes;
    in.read(reinterpret_cast<char*>(buf.data()), static_cast<std::streamsize>(bytes));
    if (!in.good()) fail("trace: truncated record payload", path);
    if (validate_types) {
      for (std::size_t i = 0; i < batch; ++i) {
        const unsigned char type = buf[i * kLpm2RecordBytes];
        if (type > static_cast<unsigned char>(OpType::kStore)) {
          fail("trace: invalid op type byte " + std::to_string(type), path);
        }
      }
    }
    checksum.update(buf.data(), bytes);
    remaining -= batch;
  }
}

/// Parses + validates a header from an already-open stream, leaving the
/// stream positioned at the first record. `total_bytes` is the file size.
TraceFileInfo parse_header(std::istream& in, const std::string& path,
                           std::uint64_t total_bytes) {
  std::array<char, 4> magic{};
  in.read(magic.data(), magic.size());
  if (!in.good()) fail("trace: file too small for a magic", path);

  TraceFileInfo info;
  info.file_bytes = total_bytes;

  if (magic == kMagicV2) {
    std::array<unsigned char, kLpm2HeaderBytes> hdr{};
    std::copy(magic.begin(), magic.end(), reinterpret_cast<char*>(hdr.data()));
    in.read(reinterpret_cast<char*>(hdr.data() + 4), kLpm2HeaderBytes - 4);
    if (!in.good()) fail("trace: truncated LPM2 header", path);
    return parse_lpm2_header(hdr.data(), total_bytes, path);
  }

  if (magic == kMagicV1) {
    std::array<unsigned char, kV1HeaderBytes - 4> hdr{};
    in.read(reinterpret_cast<char*>(hdr.data()), hdr.size());
    if (!in.good()) fail("trace: truncated LPMT header", path);
    info.version = get_u32(&hdr[0]);
    info.count = get_u64(&hdr[4]);
    if (info.version != 1) {
      fail("trace: unsupported LPMT version " + std::to_string(info.version), path);
    }
    if (info.count > (total_bytes - kV1HeaderBytes) / kLpm2RecordBytes) {
      fail("trace: header count " + std::to_string(info.count) +
               " exceeds the records present",
           path);
    }
    return info;
  }

  fail("trace: unrecognized magic (not LPMT or LPM2)", path);
}

}  // namespace

TraceFileInfo parse_lpm2_header(const unsigned char* header,
                                std::uint64_t file_bytes,
                                const std::string& path) {
  if (file_bytes < kLpm2HeaderBytes) fail("trace: file too small for an LPM2 header", path);
  if (std::memcmp(header, kMagicV2.data(), 4) != 0) {
    fail("trace: bad LPM2 magic", path);
  }
  TraceFileInfo info;
  info.file_bytes = file_bytes;
  info.version = get_u32(header + 4);
  info.count = get_u64(header + 8);
  info.checksum = get_u64(header + 16);
  const std::uint32_t record_bytes = get_u32(header + 24);
  const std::uint32_t reserved = get_u32(header + 28);
  if (info.version != kLpm2Version) {
    fail("trace: unsupported LPM2 version " + std::to_string(info.version), path);
  }
  if (record_bytes != kLpm2RecordBytes) {
    fail("trace: unexpected record size " + std::to_string(record_bytes), path);
  }
  if (reserved != 0) fail("trace: nonzero reserved header field", path);
  if (info.checksum == 0) fail("trace: header checksum is unset", path);
  // A valid file's size is exactly header + count records. This makes the
  // count self-validating: every truncation, every appended byte, and every
  // count bit-flip changes the equation and is rejected here, before any
  // allocation or record decode.
  if (info.count > (file_bytes - kLpm2HeaderBytes) / kLpm2RecordBytes ||
      file_bytes != kLpm2HeaderBytes + info.count * kLpm2RecordBytes) {
    fail("trace: file size " + std::to_string(file_bytes) +
             " does not match header count " + std::to_string(info.count),
         path);
  }
  return info;
}

void encode_record(const MicroOp& op, unsigned char* dst) {
  dst[0] = static_cast<unsigned char>(op.type);
  dst[1] = op.exec_latency;
  put_u32(dst + 2, op.dep_dist);
  put_u32(dst + 6, op.dep_dist2);
  put_u64(dst + 10, op.addr);
}

MicroOp decode_record(const unsigned char* src) {
  if (src[0] > static_cast<unsigned char>(OpType::kStore)) {
    throw util::IoError("trace: invalid op type byte " + std::to_string(src[0]) +
                        " (corrupt record)");
  }
  MicroOp op;
  op.type = static_cast<OpType>(src[0]);
  op.exec_latency = src[1];
  op.dep_dist = get_u32(src + 2);
  op.dep_dist2 = get_u32(src + 6);
  op.addr = get_u64(src + 10);
  return op;
}

std::uint64_t record_trace_v2(TraceSource& source, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) fail("record_trace_v2: cannot open for writing", path);

  // Placeholder header; count and checksum are patched once known.
  std::array<unsigned char, kLpm2HeaderBytes> hdr{};
  std::copy(kMagicV2.begin(), kMagicV2.end(), reinterpret_cast<char*>(hdr.data()));
  put_u32(&hdr[4], kLpm2Version);
  put_u32(&hdr[24], kLpm2RecordBytes);
  out.write(reinterpret_cast<const char*>(hdr.data()), hdr.size());

  util::Checksum64 checksum;
  std::uint64_t count = 0;
  std::vector<MicroOp> ops(kIoBatchOps);
  std::vector<unsigned char> buf(kIoBatchOps * kLpm2RecordBytes);
  for (;;) {
    const std::size_t got = source.fill(ops.data(), ops.size());
    if (got == 0) break;
    if (got > ops.size()) {
      throw util::SimError("record_trace_v2: source '" + source.name() +
                           "' returned more ops than requested");
    }
    for (std::size_t i = 0; i < got; ++i) {
      encode_record(ops[i], buf.data() + i * kLpm2RecordBytes);
    }
    const std::size_t bytes = got * kLpm2RecordBytes;
    checksum.update(buf.data(), bytes);
    out.write(reinterpret_cast<const char*>(buf.data()),
              static_cast<std::streamsize>(bytes));
    if (!out.good()) fail("record_trace_v2: write failed", path);
    count += got;
    if (got < ops.size()) break;  // short fill = source exhausted
  }

  const std::uint64_t digest = checksum.digest();
  put_u64(&hdr[8], count);
  put_u64(&hdr[16], digest);
  out.seekp(0);
  out.write(reinterpret_cast<const char*>(hdr.data()), hdr.size());
  out.flush();
  if (!out.good()) fail("record_trace_v2: header patch failed", path);
  return digest;
}

TraceFileInfo inspect_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) fail("trace: cannot open", path);
  const std::uint64_t total = stream_size(in, path);
  TraceFileInfo info = parse_header(in, path, total);
  if (info.version == 1) {
    // v1 stores no checksum; compute it from the records so callers (and
    // fingerprinting) see the same content identity either format carries.
    util::Checksum64 checksum;
    scan_records(in, path, info.count, checksum, /*validate_types=*/false);
    info.checksum = checksum.digest();
  }
  return info;
}

TraceFileInfo verify_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) fail("trace: cannot open", path);
  const std::uint64_t total = stream_size(in, path);
  TraceFileInfo info = parse_header(in, path, total);
  util::Checksum64 checksum;
  scan_records(in, path, info.count, checksum, /*validate_types=*/true);
  const std::uint64_t computed = checksum.digest();
  if (info.version == kLpm2Version && computed != info.checksum) {
    fail("trace: content checksum mismatch (header says " +
             std::to_string(info.checksum) + ", records hash to " +
             std::to_string(computed) + ")",
         path);
  }
  info.checksum = computed;
  return info;
}

WorkloadProfile trace_file_profile(const std::string& path, std::string name) {
  const TraceFileInfo info = inspect_trace(path);
  util::require(info.count >= 1, path, ": recorded trace is empty");
  WorkloadProfile wl;
  if (name.empty()) {
    const std::size_t slash = path.find_last_of('/');
    wl.name = slash == std::string::npos ? path : path.substr(slash + 1);
  } else {
    wl.name = std::move(name);
  }
  wl.trace_path = path;
  wl.trace_checksum = info.checksum;
  wl.length = info.count;
  return wl;
}

}  // namespace lpm::trace
