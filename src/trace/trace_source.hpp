// Abstract instruction stream consumed by a core model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/instruction.hpp"
#include "util/error.hpp"

namespace lpm::trace {

class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Produces the next micro-op. Returns false at end-of-trace.
  virtual bool next(MicroOp& op) = 0;

  /// Produces up to `n` micro-ops into `dst`, returning how many were
  /// written. A short count (including 0) means end-of-trace. The
  /// concatenation of fill() chunks must be byte-identical to the stream
  /// next() would produce — consumers batch purely for throughput
  /// (cores pull whole chunks instead of one virtual call per op). The
  /// default forwards to next(); sources with cheap bulk generation
  /// override it.
  virtual std::size_t fill(MicroOp* dst, std::size_t n) {
    std::size_t produced = 0;
    while (produced < n && next(dst[produced])) ++produced;
    return produced;
  }

  /// Rewinds to the beginning; the re-played stream must be identical.
  virtual void reset() = 0;

  /// Human-readable workload name for reports.
  [[nodiscard]] virtual std::string name() const = 0;
};

using TraceSourcePtr = std::unique_ptr<TraceSource>;

/// Drains up to `max_ops` micro-ops into a vector. The materialized list
/// replayed through a VectorTrace is stream-identical to the source (fill()
/// contract), which is what lets the differential oracle delta-debug a
/// divergent trace op by op.
///
/// Termination is guaranteed by *enforcing* the fill() contract rather than
/// trusting it: a source that over-reports (got > requested) throws
/// SimError immediately (it just scribbled past the buffer we handed it —
/// fail loudly, not later), and any short count — zero or not — is taken as
/// end-of-trace, so a buggy source repeatedly returning short can stall the
/// drain at most once instead of spinning it forever.
[[nodiscard]] inline std::vector<MicroOp> materialize(TraceSource& source,
                                                      std::size_t max_ops) {
  std::vector<MicroOp> ops(max_ops);
  std::size_t total = 0;
  while (total < max_ops) {
    const std::size_t want = max_ops - total;
    const std::size_t got = source.fill(ops.data() + total, want);
    if (got > want) {
      throw util::SimError("materialize: trace source '" + source.name() +
                           "' violated the fill() contract: returned " +
                           std::to_string(got) + " ops for a request of " +
                           std::to_string(want));
    }
    total += got;
    if (got < want) break;  // fill() contract: a short count means end-of-trace
  }
  ops.resize(total);
  return ops;
}

}  // namespace lpm::trace
