// Abstract instruction stream consumed by a core model.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "trace/instruction.hpp"

namespace lpm::trace {

class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Produces the next micro-op. Returns false at end-of-trace.
  virtual bool next(MicroOp& op) = 0;

  /// Rewinds to the beginning; the re-played stream must be identical.
  virtual void reset() = 0;

  /// Human-readable workload name for reports.
  [[nodiscard]] virtual std::string name() const = 0;
};

using TraceSourcePtr = std::unique_ptr<TraceSource>;

}  // namespace lpm::trace
