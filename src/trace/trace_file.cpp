#include "trace/trace_file.hpp"

#include <array>
#include <cstring>
#include <fstream>

#include "util/error.hpp"

namespace lpm::trace {

namespace {

constexpr std::array<char, 4> kMagic = {'L', 'P', 'M', 'T'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kRecordBytes = 1 + 1 + 4 + 4 + 8;

void put_u32(std::ostream& out, std::uint32_t v) {
  std::array<unsigned char, 4> b{};
  for (int i = 0; i < 4; ++i) b[static_cast<std::size_t>(i)] = (v >> (8 * i)) & 0xff;
  out.write(reinterpret_cast<const char*>(b.data()), b.size());
}

void put_u64(std::ostream& out, std::uint64_t v) {
  std::array<unsigned char, 8> b{};
  for (int i = 0; i < 8; ++i) b[static_cast<std::size_t>(i)] = (v >> (8 * i)) & 0xff;
  out.write(reinterpret_cast<const char*>(b.data()), b.size());
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

std::uint64_t record_trace(TraceSource& source, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  util::require(out.good(), "record_trace: cannot open " + path);

  out.write(kMagic.data(), kMagic.size());
  put_u32(out, kVersion);
  const auto count_pos = out.tellp();
  put_u64(out, 0);  // patched below

  std::uint64_t count = 0;
  MicroOp op;
  while (source.next(op)) {
    const auto type = static_cast<unsigned char>(op.type);
    out.write(reinterpret_cast<const char*>(&type), 1);
    out.write(reinterpret_cast<const char*>(&op.exec_latency), 1);
    put_u32(out, op.dep_dist);
    put_u32(out, op.dep_dist2);
    put_u64(out, op.addr);
    ++count;
  }

  out.seekp(count_pos);
  put_u64(out, count);
  util::require(out.good(), "record_trace: write failed for " + path);
  return count;
}

std::vector<MicroOp> load_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  util::require(in.good(), "load_trace: cannot open " + path);

  std::array<char, 4> magic{};
  in.read(magic.data(), magic.size());
  util::require(in.good() && magic == kMagic, "load_trace: bad magic in " + path);

  std::array<unsigned char, 8> hdr{};
  in.read(reinterpret_cast<char*>(hdr.data()), 4);
  util::require(in.good(), "load_trace: truncated header in " + path);
  const std::uint32_t version = get_u32(hdr.data());
  util::require(version == kVersion, "load_trace: unsupported version in " + path);

  in.read(reinterpret_cast<char*>(hdr.data()), 8);
  util::require(in.good(), "load_trace: truncated header in " + path);
  const std::uint64_t count = get_u64(hdr.data());

  // Guard the allocation: `count` is attacker/corruption-controlled, so
  // check it against the bytes actually present before reserve() — a huge
  // bogus count must fail typed, not OOM the process.
  const std::streamoff records_begin = in.tellg();
  in.seekg(0, std::ios::end);
  const std::streamoff file_end = in.tellg();
  util::require(records_begin >= 0 && file_end >= records_begin,
                "load_trace: cannot size " + path);
  const std::uint64_t available =
      static_cast<std::uint64_t>(file_end - records_begin) / kRecordBytes;
  if (count > available) {
    throw util::IoError("load_trace: header count " + std::to_string(count) +
                        " exceeds the " + std::to_string(available) +
                        " records present in " + path +
                        " (corrupt count field)");
  }
  in.seekg(records_begin);

  std::vector<MicroOp> ops;
  ops.reserve(count);
  std::array<unsigned char, kRecordBytes> rec{};
  for (std::uint64_t i = 0; i < count; ++i) {
    in.read(reinterpret_cast<char*>(rec.data()), rec.size());
    util::require(in.good(), "load_trace: truncated record in " + path);
    MicroOp op;
    util::require(rec[0] <= static_cast<unsigned char>(OpType::kStore),
                  "load_trace: invalid op type in " + path);
    op.type = static_cast<OpType>(rec[0]);
    op.exec_latency = rec[1];
    op.dep_dist = get_u32(&rec[2]);
    op.dep_dist2 = get_u32(&rec[6]);
    op.addr = get_u64(&rec[10]);
    ops.push_back(op);
  }
  return ops;
}

}  // namespace lpm::trace
