// Catalog of 16 synthetic workload profiles named after the SPEC CPU2006
// benchmarks whose memory behaviour they imitate (see DESIGN.md §6). These
// are analogues, not the SPEC binaries: each profile encodes the published
// qualitative characterization (working-set size, reuse, streaming vs
// pointer-chasing, memory intensity) that the paper's case studies rely on.
#pragma once

#include <string>
#include <vector>

#include "trace/synthetic.hpp"
#include "trace/workload_profile.hpp"

namespace lpm::trace {

enum class SpecBenchmark {
  kPerlbench,   // 400: branchy integer, medium footprint, good reuse
  kBzip2,       // 401: tiny hot working set; insensitive to L1 size
  kGcc,         // 403: large irregular footprint; every L1 step helps
  kBwaves,      // 410: many parallel FP streams; the Table-I workload
  kGamess,      // 416: strong reuse; larger L1 cuts L2 traffic markedly
  kMcf,         // 429: pointer chasing over a huge graph; low MLP
  kMilc,        // 433: huge streaming footprint; L1-size insensitive
  kZeusmp,      // 434: stencil FP, several streams
  kGromacs,     // 435: compute-bound, small footprint
  kLeslie3d,    // 437: streaming FP, moderate reuse
  kNamd,        // 444: compute-bound, very cache-friendly
  kGobmk,       // 445: integer, irregular, medium footprint
  kSoplex,      // 450: sparse algebra; scattered accesses, memory-hungry
  kHmmer,       // 456: small hot tables, extremely cache-friendly
  kSjeng,       // 458: integer search, medium footprint
  kLibquantum,  // 462: single long stream, very memory-intense
};

/// All sixteen benchmarks in catalog order (the Case-Study-II mix).
[[nodiscard]] const std::vector<SpecBenchmark>& all_spec_benchmarks();

/// Short name, e.g. "401.bzip2".
[[nodiscard]] std::string spec_name(SpecBenchmark b);

/// The profile for one benchmark. `length` micro-ops, deterministic from
/// `seed` (callers typically mix in a core id).
[[nodiscard]] WorkloadProfile spec_profile(SpecBenchmark b,
                                           std::uint64_t length = 100000,
                                           std::uint64_t seed = 1);

/// A phased workload with memory bursts, used by the interval-sensitivity
/// experiment (§V: 10/20/40-cycle intervals vs burst detection).
[[nodiscard]] WorkloadProfile burst_profile(std::uint64_t phase_length,
                                            double burst_duty,
                                            std::uint64_t length = 200000,
                                            std::uint64_t seed = 7);

/// Convenience: builds the trace for a profile.
[[nodiscard]] TraceSourcePtr make_trace(const WorkloadProfile& profile);

}  // namespace lpm::trace
