#include "trace/synthetic.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace lpm::trace {

namespace {

constexpr std::uint64_t kBlockBytes = 64;  ///< granule of the popularity pool

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

void WorkloadProfile::validate() const {
  using util::require;
  if (file_backed()) {
    // Replayed from disk: the synthetic knobs are ignored, so only the
    // replay identity matters. The checksum is mandatory — it is the
    // fingerprint component that keeps memoization and shard routing
    // correct when a path is renamed or a file is swapped.
    require(trace_checksum != 0, name,
            ": file-backed profile needs a content checksum "
            "(build it via trace_file_profile)");
    require(length >= 1, name, ": recorded trace must hold at least one op");
    return;
  }
  require(fmem >= 0.0 && fmem <= 1.0, name, ": fmem must be in [0,1]");
  require(store_fraction >= 0.0 && store_fraction <= 1.0,
          name, ": store_fraction must be in [0,1]");
  require(working_set_bytes >= kBlockBytes,
          name, ": working set must be at least one block");
  require(zipf_skew >= 0.0, name, ": zipf_skew must be non-negative");
  require(seq_fraction >= 0.0 && seq_fraction <= 1.0,
          name, ": seq_fraction must be in [0,1]");
  require(num_streams >= 1, name, ": num_streams must be >= 1");
  require(stride_bytes >= 1, name, ": stride_bytes must be >= 1");
  require(pointer_chase_fraction >= 0.0 && pointer_chase_fraction <= 1.0,
          name, ": pointer_chase_fraction must be in [0,1]");
  require(load_use_fraction >= 0.0 && load_use_fraction <= 1.0,
          name, ": load_use_fraction must be in [0,1]");
  require(alu_dep_fraction >= 0.0 && alu_dep_fraction <= 1.0,
          name, ": alu_dep_fraction must be in [0,1]");
  require(burst_duty >= 0.0 && burst_duty <= 1.0,
          name, ": burst_duty must be in [0,1]");
  require(burst_fmem >= 0.0 && burst_fmem <= 1.0,
          name, ": burst_fmem must be in [0,1]");
  require(length >= 1, name, ": length must be >= 1");
  require(alu_latency >= 1, name, ": alu_latency must be >= 1");
}

SyntheticTrace::SyntheticTrace(WorkloadProfile profile)
    : profile_(std::move(profile)),
      rng_(profile_.seed),
      block_sampler_(
          std::max<std::size_t>(1, profile_.working_set_bytes / kBlockBytes),
          profile_.zipf_skew) {
  profile_.validate();
  util::require(!profile_.file_backed(), profile_.name,
                ": SyntheticTrace cannot replay a file-backed profile "
                "(route through make_trace/open_trace)");
  reset();
}

void SyntheticTrace::reset() {
  rng_.reseed(profile_.seed);
  emitted_ = 0;
  last_load_index_ = ~std::uint64_t{0};
  stream_pos_.assign(profile_.num_streams, 0);
  // Spread stream starting points across the working set deterministically.
  for (std::uint32_t s = 0; s < profile_.num_streams; ++s) {
    stream_pos_[s] =
        (profile_.working_set_bytes / profile_.num_streams) * s & ~(kBlockBytes - 1);
  }
}

bool SyntheticTrace::is_burst_phase(const WorkloadProfile& profile,
                                    std::uint64_t phase_idx) {
  if (profile.phase_length == 0 || profile.burst_duty <= 0.0) return false;
  // Deterministic hash of (seed, phase) -> uniform [0,1).
  const std::uint64_t h = mix64(profile.seed * 0x9e3779b97f4a7c15ULL + phase_idx);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < profile.burst_duty;
}

SyntheticTrace::PhaseParams SyntheticTrace::current_phase_params() const {
  if (profile_.phase_length > 0) {
    const std::uint64_t phase_idx = emitted_ / profile_.phase_length;
    if (is_burst_phase(profile_, phase_idx)) {
      return {profile_.burst_fmem, profile_.burst_seq_fraction};
    }
  }
  return {profile_.fmem, profile_.seq_fraction};
}

Addr SyntheticTrace::sample_address(double seq_fraction) {
  if (rng_.next_bool(seq_fraction)) {
    const std::size_t s =
        profile_.num_streams == 1 ? 0 : rng_.next_below(profile_.num_streams);
    const Addr addr = stream_pos_[s];
    stream_pos_[s] = (stream_pos_[s] + profile_.stride_bytes) % profile_.working_set_bytes;
    return profile_.addr_base + addr;
  }
  const std::uint64_t block = block_sampler_.sample(rng_);
  const std::uint64_t offset = rng_.next_below(kBlockBytes / 8) * 8;
  return profile_.addr_base + block * kBlockBytes + offset;
}

bool SyntheticTrace::next(MicroOp& op) {
  if (emitted_ >= profile_.length) return false;
  generate(op);
  return true;
}

std::size_t SyntheticTrace::fill(MicroOp* dst, std::size_t n) {
  const std::uint64_t left = profile_.length - emitted_;
  const std::size_t take = static_cast<std::size_t>(
      std::min<std::uint64_t>(n, left));
  for (std::size_t i = 0; i < take; ++i) generate(dst[i]);
  return take;
}

void SyntheticTrace::generate(MicroOp& op) {
  const PhaseParams phase = current_phase_params();
  op = MicroOp{};

  if (rng_.next_bool(phase.fmem)) {
    const bool is_store = rng_.next_bool(profile_.store_fraction);
    op.type = is_store ? OpType::kStore : OpType::kLoad;
    op.addr = sample_address(phase.seq_fraction);
    if (!is_store) {
      // Pointer chasing: this load's address depends on the previous load,
      // serializing the two in the pipeline (kills memory-level parallelism).
      if (last_load_index_ != ~std::uint64_t{0} &&
          rng_.next_bool(profile_.pointer_chase_fraction)) {
        const std::uint64_t dist = emitted_ - last_load_index_;
        op.dep_dist = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(dist, ~std::uint32_t{0}));
      }
      last_load_index_ = emitted_;
    } else if (last_load_index_ != ~std::uint64_t{0} &&
               rng_.next_bool(profile_.load_use_fraction)) {
      // Stores frequently write a recently loaded value.
      const std::uint64_t dist = emitted_ - last_load_index_;
      op.dep_dist = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(dist, ~std::uint32_t{0}));
    }
  } else {
    op.type = OpType::kAlu;
    op.exec_latency = profile_.alu_latency;
    if (rng_.next_bool(profile_.alu_dep_fraction) && emitted_ > 0) {
      op.dep_dist = 1;
    }
    if (last_load_index_ != ~std::uint64_t{0} &&
        rng_.next_bool(profile_.load_use_fraction)) {
      const std::uint64_t dist = emitted_ - last_load_index_;
      op.dep_dist2 = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(dist, ~std::uint32_t{0}));
    }
  }

  ++emitted_;
}

}  // namespace lpm::trace
