// Structured tracing: Chrome trace_event JSON, loadable in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing. This is the time-resolved
// counterpart of the metrics registry — where the registry answers "how
// many / how long in aggregate", a trace answers "when, on which worker,
// overlapping what".
//
// A TraceSession writes one JSON array of event objects, one event per
// line. Three event kinds are emitted by the built-in instrumentation:
//
//   * complete events ("ph":"X") — spans with a start and duration, e.g.
//     exp.execute (one simulation), exp.run_batch, lpm.iteration;
//   * counter events ("ph":"C") — sampled series, e.g. the LPM walk's
//     lpm.lpmr trajectory (LPMR1/2/3 per iteration);
//   * instant events ("ph":"i") — point marks, e.g. exp.retry.
//
// Timestamps are microseconds on the process steady clock (ts 0 = session
// construction); tids are small per-thread ordinals assigned on first use,
// so engine workers show up as separate Perfetto tracks.
//
// Thread safety: all emit methods and close() are safe from any thread
// (one internal mutex serializes the stream; events are formatted outside
// it). The global() session pointer is stable for the process lifetime:
// nullptr when $LPM_TRACE is unset, else a session writing to that path,
// closed (the JSON array terminated) by an atexit hook. Emitting after
// close() is a silent no-op, never a torn file.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace lpm::obs {

/// Key/value pairs attached to an event's "args" object (shown in the
/// Perfetto side panel when the event is selected).
using TraceArgs = std::vector<std::pair<std::string, double>>;

class TraceSession {
 public:
  /// Opens `path` and writes the array opener. Throws util::IoError when
  /// the path is unwritable.
  explicit TraceSession(const std::string& path);
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Microseconds since session start (steady clock); the `ts` domain of
  /// every event. Monotonic, never wall time.
  [[nodiscard]] std::uint64_t now_us() const;

  /// Span: started at `start_us`, lasted `dur_us`. `cat` groups events in
  /// the viewer ("exp", "sim", "lpm").
  void complete_event(const std::string& name, const std::string& cat,
                      std::uint64_t start_us, std::uint64_t dur_us,
                      const TraceArgs& args = {});

  /// Counter sample: one stacked-series track per `name`.
  void counter_event(const std::string& name, std::uint64_t ts_us,
                     const TraceArgs& values);

  /// Point event at `ts_us`.
  void instant_event(const std::string& name, const std::string& cat,
                     std::uint64_t ts_us, const TraceArgs& args = {});

  /// Terminates the JSON array and closes the file; further emits are
  /// no-ops. Idempotent.
  void close();

  [[nodiscard]] std::uint64_t events_written() const;
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Process-wide session from $LPM_TRACE, or nullptr when tracing is off.
  /// The pointer never changes after the first call, so callers may cache
  /// it. First use arms the atexit close.
  static TraceSession* global();

 private:
  void emit(const std::string& line);

  std::string path_;
  std::uint64_t start_ns_ = 0;  ///< steady-clock nanos at construction
  mutable std::mutex mutex_;
  std::ofstream out_;
  bool closed_ = false;
  bool first_event_ = true;
  std::uint64_t events_ = 0;
};

/// RAII span on a session: records construction->destruction as a complete
/// event. A null session makes every operation free, so instrumentation
/// sites can unconditionally write `ScopedSpan span(TraceSession::global(),
/// "name", "cat");`.
class ScopedSpan {
 public:
  ScopedSpan(TraceSession* session, std::string name, std::string cat = "lpm")
      : session_(session), name_(std::move(name)), cat_(std::move(cat)),
        start_us_(session ? session->now_us() : 0) {}
  ~ScopedSpan() {
    if (session_ != nullptr) {
      session_->complete_event(name_, cat_, start_us_,
                               session_->now_us() - start_us_, args_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a numeric argument shown when the span is selected.
  void arg(std::string key, double value) {
    if (session_ != nullptr) args_.emplace_back(std::move(key), value);
  }

 private:
  TraceSession* session_;
  std::string name_;
  std::string cat_;
  std::uint64_t start_us_;
  TraceArgs args_;
};

// Span over the enclosing scope on the global session; free when $LPM_TRACE
// is unset. Usage: OBS_SPAN("exp.run_batch", "exp");
#define OBS_SPAN_CONCAT2(a, b) a##b
#define OBS_SPAN_CONCAT(a, b) OBS_SPAN_CONCAT2(a, b)
#define OBS_SPAN(name, cat)                                     \
  ::lpm::obs::ScopedSpan OBS_SPAN_CONCAT(obs_span_, __LINE__)(  \
      ::lpm::obs::TraceSession::global(), (name), (cat))

}  // namespace lpm::obs
