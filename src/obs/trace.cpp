#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <sstream>

#include "util/error.hpp"
#include "util/log.hpp"

namespace lpm::obs {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Small per-thread ordinal so each thread gets its own Perfetto track.
/// 0 is the thread that created the session (normally main).
int trace_tid() {
  static std::atomic<int> next{0};
  thread_local int tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

std::string format_args(const TraceArgs& args) {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < args.size(); ++i) {
    os << (i == 0 ? "" : ",") << '"' << escape(args[i].first)
       << "\":" << args[i].second;
  }
  os << '}';
  return os.str();
}

}  // namespace

TraceSession::TraceSession(const std::string& path)
    : path_(path), start_ns_(steady_now_ns()) {
  out_.open(path);
  if (!out_.is_open()) {
    throw util::IoError("TraceSession: cannot open '" + path + "' for writing");
  }
  out_ << "[\n";
}

TraceSession::~TraceSession() { close(); }

std::uint64_t TraceSession::now_us() const {
  return (steady_now_ns() - start_ns_) / 1000;
}

void TraceSession::emit(const std::string& line) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return;
  if (!first_event_) out_ << ",\n";
  first_event_ = false;
  out_ << line;
  ++events_;
}

void TraceSession::complete_event(const std::string& name,
                                  const std::string& cat,
                                  std::uint64_t start_us, std::uint64_t dur_us,
                                  const TraceArgs& args) {
  std::ostringstream os;
  os << "{\"name\":\"" << escape(name) << "\",\"cat\":\"" << escape(cat)
     << "\",\"ph\":\"X\",\"ts\":" << start_us << ",\"dur\":" << dur_us
     << ",\"pid\":1,\"tid\":" << trace_tid()
     << ",\"args\":" << format_args(args) << '}';
  emit(os.str());
}

void TraceSession::counter_event(const std::string& name, std::uint64_t ts_us,
                                 const TraceArgs& values) {
  std::ostringstream os;
  os << "{\"name\":\"" << escape(name)
     << "\",\"cat\":\"counter\",\"ph\":\"C\",\"ts\":" << ts_us
     << ",\"pid\":1,\"tid\":0,\"args\":" << format_args(values) << '}';
  emit(os.str());
}

void TraceSession::instant_event(const std::string& name,
                                 const std::string& cat, std::uint64_t ts_us,
                                 const TraceArgs& args) {
  std::ostringstream os;
  os << "{\"name\":\"" << escape(name) << "\",\"cat\":\"" << escape(cat)
     << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << ts_us
     << ",\"pid\":1,\"tid\":" << trace_tid()
     << ",\"args\":" << format_args(args) << '}';
  emit(os.str());
}

void TraceSession::close() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return;
  closed_ = true;
  out_ << "\n]\n";
  out_.flush();
  out_.close();
}

std::uint64_t TraceSession::events_written() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

namespace {

TraceSession* g_global_session = nullptr;

void close_global_session() {
  if (g_global_session != nullptr) g_global_session->close();
}

}  // namespace

TraceSession* TraceSession::global() {
  // Leaked like the global registry: late writers (worker teardown, static
  // destructors) must never touch a destroyed session. The atexit hook
  // only terminates the JSON array; emits after that are silent no-ops.
  static TraceSession* instance = []() -> TraceSession* {
    const char* path = std::getenv("LPM_TRACE");
    if (path == nullptr || *path == '\0') return nullptr;
    try {
      g_global_session = new TraceSession(path);
    } catch (const std::exception& e) {
      util::log_error() << "LPM_TRACE disabled: " << e.what();
      return nullptr;
    }
    std::atexit(close_global_session);
    return g_global_session;
  }();
  return instance;
}

}  // namespace lpm::obs
