#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace lpm::obs {

namespace {

std::atomic<std::uint64_t> g_registry_serial{0};

std::uint64_t steady_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Lock-free add for atomic<double> (fetch_add on floating atomics is
/// C++20 but not universally lock-free; the CAS loop is portable).
void atomic_add_double(std::atomic<double>& slot, double delta) {
  double cur = slot.load(std::memory_order_relaxed);
  while (!slot.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

std::string json_number(double v) {
  // JSON has no inf/nan; clamp to null-free sentinels so the file always
  // parses (python -m json.tool chokes on bare inf).
  if (!(v == v)) return "0";
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

// --- shards ---------------------------------------------------------------

struct MetricsRegistry::HistogramShard {
  explicit HistogramShard(std::vector<double> bucket_bounds)
      : bounds(std::move(bucket_bounds)), counts(bounds.size() + 1) {}
  /// Private copy of the upper edges so the hot observe() path never
  /// touches registry storage (which may reallocate under the mutex).
  std::vector<double> bounds;
  std::vector<std::atomic<std::uint64_t>> counts;  // bounds.size() + 1
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> sum{0.0};
};

/// One thread's private block of slots. Slot vectors only grow (never
/// shrink or move existing unique_ptr targets while readers hold the
/// registry mutex), and all growth happens under the registry mutex.
struct MetricsRegistry::Shard {
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> counters;
  std::vector<std::unique_ptr<HistogramShard>> histograms;
};

namespace {

constexpr std::size_t kNoShard = static_cast<std::size_t>(-1);

/// Thread-local cache: raw slot pointers per (registry serial, metric id).
/// Keyed by the registry's unique serial — never its address — so a
/// destroyed registry can't be written through a stale cache even if a new
/// one reuses its memory.
struct TlsCache {
  std::size_t shard_index = kNoShard;  ///< this thread's shard in the registry
  std::vector<std::atomic<std::uint64_t>*> counter_slots;
  std::vector<MetricsRegistry::HistogramShard*> histogram_slots;
};

TlsCache& tls_for(std::uint64_t serial) {
  // One-entry fast path: instrumentation overwhelmingly hits a single
  // registry (the global one) per thread.
  thread_local std::uint64_t last_serial = 0;
  thread_local TlsCache* last = nullptr;
  if (serial == last_serial && last != nullptr) return *last;
  thread_local std::unordered_map<std::uint64_t, TlsCache> caches;
  TlsCache& c = caches[serial];
  last_serial = serial;
  last = &c;
  return c;
}

}  // namespace

// --- registry -------------------------------------------------------------

MetricsRegistry::MetricsRegistry()
    : serial_(g_registry_serial.fetch_add(1, std::memory_order_relaxed) + 1) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Counter MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = counter_ids_.emplace(name, counter_names_.size());
  if (inserted) counter_names_.push_back(name);
  return Counter(this, it->second);
}

MetricsRegistry::Gauge MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = gauge_ids_.emplace(name, gauge_names_.size());
  if (inserted) {
    gauge_names_.push_back(name);
    gauge_values_.push_back(std::make_unique<std::atomic<double>>(0.0));
    gauge_set_.push_back(false);
  }
  return Gauge(this, it->second);
}

MetricsRegistry::Histogram MetricsRegistry::histogram(
    const std::string& name, std::vector<double> bounds) {
  util::require(!bounds.empty(), "histogram '" + name + "': need >= 1 bound");
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    util::require(bounds[i - 1] < bounds[i],
                  "histogram '" + name + "': bounds must be strictly increasing");
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = histogram_ids_.emplace(name, histogram_meta_.size());
  if (inserted) histogram_meta_.push_back(HistogramMeta{name, std::move(bounds)});
  return Histogram(this, it->second);
}

std::vector<double> MetricsRegistry::latency_ms_bounds() {
  return {0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500,
          1000, 2500, 5000, 10000, 30000, 60000};
}

std::vector<double> MetricsRegistry::concurrency_bounds() {
  return {0.25, 0.5, 1, 1.5, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64};
}

std::atomic<std::uint64_t>* MetricsRegistry::counter_slot(std::size_t id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  TlsCache& tls = tls_for(serial_);
  if (tls.shard_index == kNoShard) {
    tls.shard_index = shards_.size();
    shards_.push_back(std::make_unique<Shard>());
  }
  Shard& shard = *shards_[tls.shard_index];
  if (shard.counters.size() <= id) shard.counters.resize(id + 1);
  if (shard.counters[id] == nullptr) {
    shard.counters[id] = std::make_unique<std::atomic<std::uint64_t>>(0);
  }
  if (tls.counter_slots.size() <= id) tls.counter_slots.resize(id + 1, nullptr);
  tls.counter_slots[id] = shard.counters[id].get();
  return tls.counter_slots[id];
}

MetricsRegistry::HistogramShard* MetricsRegistry::histogram_shard(
    std::size_t id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  TlsCache& tls = tls_for(serial_);
  if (tls.shard_index == kNoShard) {
    tls.shard_index = shards_.size();
    shards_.push_back(std::make_unique<Shard>());
  }
  Shard& shard = *shards_[tls.shard_index];
  if (shard.histograms.size() <= id) shard.histograms.resize(id + 1);
  if (shard.histograms[id] == nullptr) {
    shard.histograms[id] =
        std::make_unique<HistogramShard>(histogram_meta_[id].bounds);
  }
  if (tls.histogram_slots.size() <= id) {
    tls.histogram_slots.resize(id + 1, nullptr);
  }
  tls.histogram_slots[id] = shard.histograms[id].get();
  return tls.histogram_slots[id];
}

void MetricsRegistry::Counter::add(std::uint64_t delta) {
  if (reg_ == nullptr) return;
  TlsCache& tls = tls_for(reg_->serial_);
  std::atomic<std::uint64_t>* slot =
      id_ < tls.counter_slots.size() ? tls.counter_slots[id_] : nullptr;
  if (slot == nullptr) slot = reg_->counter_slot(id_);
  slot->fetch_add(delta, std::memory_order_relaxed);
}

void MetricsRegistry::Histogram::observe(double value) {
  if (reg_ == nullptr) return;
  TlsCache& tls = tls_for(reg_->serial_);
  HistogramShard* hs =
      id_ < tls.histogram_slots.size() ? tls.histogram_slots[id_] : nullptr;
  if (hs == nullptr) hs = reg_->histogram_shard(id_);
  // Upper-inclusive buckets: v lands in the first bucket with v <= bound;
  // values above the last edge go to the overflow bucket.
  const auto it = std::lower_bound(hs->bounds.begin(), hs->bounds.end(), value);
  const std::size_t bucket = static_cast<std::size_t>(it - hs->bounds.begin());
  hs->counts[bucket].fetch_add(1, std::memory_order_relaxed);
  hs->count.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(hs->sum, value);
}

std::size_t MetricsRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counter_ids_.size() + gauge_ids_.size() + histogram_ids_.size();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, id] : counter_ids_) {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      if (id < shard->counters.size() && shard->counters[id] != nullptr) {
        total += shard->counters[id]->load(std::memory_order_relaxed);
      }
    }
    snap.counters.emplace(name, total);
  }
  for (const auto& [name, id] : gauge_ids_) {
    if (gauge_set_[id]) {
      snap.gauges.emplace(name,
                          gauge_values_[id]->load(std::memory_order_relaxed));
    } else {
      snap.gauges.emplace(name, 0.0);
    }
  }
  for (const auto& [name, id] : histogram_ids_) {
    HistogramSnapshot h;
    h.bounds = histogram_meta_[id].bounds;
    h.counts.assign(h.bounds.size() + 1, 0);
    for (const auto& shard : shards_) {
      if (id >= shard->histograms.size() || shard->histograms[id] == nullptr) {
        continue;
      }
      const HistogramShard& hs = *shard->histograms[id];
      for (std::size_t b = 0; b < h.counts.size(); ++b) {
        h.counts[b] += hs.counts[b].load(std::memory_order_relaxed);
      }
      h.count += hs.count.load(std::memory_order_relaxed);
      h.sum += hs.sum.load(std::memory_order_relaxed);
    }
    snap.histograms.emplace(name, std::move(h));
  }
  return snap;
}

void MetricsRegistry::Gauge::set(double value) {
  if (reg_ == nullptr) return;
  const std::lock_guard<std::mutex> lock(reg_->mutex_);
  reg_->gauge_values_[id_]->store(value, std::memory_order_relaxed);
  reg_->gauge_set_[id_] = true;
}

// --- snapshot output ------------------------------------------------------

std::uint64_t MetricsSnapshot::counter_or_zero(const std::string& name) const {
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

void MetricsSnapshot::write_text(std::ostream& out) const {
  for (const auto& [name, value] : counters) {
    out << name << ' ' << value << '\n';
  }
  for (const auto& [name, value] : gauges) {
    out << name << ' ' << util::fmt(value, 6) << '\n';
  }
  for (const auto& [name, h] : histograms) {
    out << name << " count=" << h.count << " sum=" << util::fmt(h.sum, 6)
        << " mean=" << util::fmt(h.mean(), 6);
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      out << ' ';
      if (b < h.bounds.size()) {
        out << "le" << util::fmt(h.bounds[b], 6);
      } else {
        out << "le+inf";
      }
      out << '=' << h.counts[b];
    }
    out << '\n';
  }
}

void MetricsSnapshot::write_json(std::ostream& out) const {
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out << (first ? "" : ",") << '"' << name << "\":" << value;
    first = false;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    out << (first ? "" : ",") << '"' << name << "\":" << json_number(value);
    first = false;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    out << (first ? "" : ",") << '"' << name << "\":{\"bounds\":[";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      out << (b == 0 ? "" : ",") << json_number(h.bounds[b]);
    }
    out << "],\"counts\":[";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      out << (b == 0 ? "" : ",") << h.counts[b];
    }
    out << "],\"count\":" << h.count << ",\"sum\":" << json_number(h.sum)
        << '}';
    first = false;
  }
  out << "}}\n";
}

// --- global registry + exit dump ------------------------------------------

bool dump_metrics(const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    util::log_warn() << "LPM_METRICS: cannot write '" << path << "'";
    return false;
  }
  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  const bool json =
      path.size() >= 5 && path.rfind(".json") == path.size() - 5;
  if (json) {
    snap.write_json(out);
  } else {
    snap.write_text(out);
  }
  return out.good();
}

namespace {

void dump_metrics_at_exit() {
  const char* path = std::getenv("LPM_METRICS");
  if (path == nullptr || *path == '\0') return;
  dump_metrics(path);
}

}  // namespace

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose (see header); the atexit hook runs before static
  // destructors registered later — in particular before the shared
  // experiment engine begins construction-ordered teardown — but the
  // registry itself stays valid for any writer however late.
  static MetricsRegistry* instance = [] {
    auto* reg = new MetricsRegistry();
    std::atexit(dump_metrics_at_exit);
    return reg;
  }();
  return *instance;
}

// --- summary line ---------------------------------------------------------

std::string summary_line() {
  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  const char* metrics_path = std::getenv("LPM_METRICS");
  const char* trace_path = std::getenv("LPM_TRACE");
  std::ostringstream os;
  os << "obs: jobs executed=" << snap.counter_or_zero("exp.jobs.executed")
     << " cached=" << snap.counter_or_zero("exp.jobs.cache_hits")
     << " failed=" << snap.counter_or_zero("exp.jobs.failed")
     << " retries=" << snap.counter_or_zero("exp.jobs.retries")
     << " | sim runs=" << snap.counter_or_zero("sim.runs")
     << " cycles=" << snap.counter_or_zero("sim.cycles")
     << " | metrics→"
     << (metrics_path != nullptr && *metrics_path != '\0' ? metrics_path
                                                          : "off")
     << " trace→"
     << (trace_path != nullptr && *trace_path != '\0' ? trace_path : "off");
  return os.str();
}

// --- scoped timer ---------------------------------------------------------

ScopedTimer::ScopedTimer(MetricsRegistry::Histogram histogram,
                         const char* span_name)
    : histogram_(histogram), span_name_(span_name),
      start_us_(steady_now_us()) {}

double ScopedTimer::elapsed_ms() const {
  return 1e-3 * static_cast<double>(steady_now_us() - start_us_);
}

ScopedTimer::~ScopedTimer() {
  const double ms = elapsed_ms();
  histogram_.observe(ms);
  if (span_name_ != nullptr) {
    if (TraceSession* session = TraceSession::global(); session != nullptr) {
      const std::uint64_t now = session->now_us();
      const auto dur =
          static_cast<std::uint64_t>(ms * 1000.0);
      session->complete_event(span_name_, "exp",
                              now >= dur ? now - dur : 0, dur);
    }
  }
}

}  // namespace lpm::obs
