// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// latency histograms, designed so the hot layers (experiment engine, sim
// run loop epilogues, the LPM walk) can record telemetry without a shared
// lock on the write path.
//
// Write path: each (thread, registry) pair owns a *shard* — a private block
// of relaxed atomics, one slot per metric. An increment is a thread-local
// cache lookup plus one relaxed fetch_add; no mutex is touched after the
// first time a thread uses a metric. Read path (snapshot()) takes the
// registry mutex, walks every shard, and sums the slots — merge-on-read,
// so writers are never blocked by a reader and vice versa.
//
// Snapshots taken while writers are active are well-defined (every slot is
// an atomic; TSan-clean by construction) but not an instantaneous cut: a
// snapshot racing an increment may or may not include it. Totals observed
// after writers quiesce (join) are exact.
//
// Thread safety: every public method on MetricsRegistry, Counter, Gauge and
// Histogram is safe to call from any thread, including experiment-engine
// workers, concurrently with snapshot(). The only lifetime rule is that the
// registry must outlive all threads still holding handles into it; the
// process-wide global() registry is never destroyed, so the rule only
// matters for privately constructed registries (join your threads first).
//
// The exit snapshot: the first touch of MetricsRegistry::global() installs
// an atexit hook that, when $LPM_METRICS=<path> is set, writes a final
// snapshot there — JSON when the path ends in .json, aligned text
// otherwise. See OBSERVABILITY.md for the metric name catalogue.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace lpm::obs {

/// Merged view of one histogram: `bounds` are the registered upper bucket
/// edges (a value v lands in the first bucket with v <= bounds[i]; values
/// above the last edge land in the implicit overflow bucket, so
/// counts.size() == bounds.size() + 1).
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;  ///< total observations
  double sum = 0.0;         ///< sum of observed values

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// Point-in-time merged view of a whole registry (maps are sorted by name
/// so text/JSON output is stable run-to-run).
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Aligned `name value` text, one metric per line.
  void write_text(std::ostream& out) const;
  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  void write_json(std::ostream& out) const;
  /// Counter value or 0 when absent (snapshot convenience for summaries).
  [[nodiscard]] std::uint64_t counter_or_zero(const std::string& name) const;
};

class MetricsRegistry {
 public:
  /// Implementation detail of the shard-per-thread write path; public only
  /// so the thread-local cache (an internal free struct) can point at it.
  struct Shard;
  struct HistogramShard;

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Cheap copyable handle to one named counter. add()/inc() are wait-free
  /// after a thread's first use (relaxed atomic on a thread-private slot).
  class Counter {
   public:
    Counter() = default;
    void inc() { add(1); }
    void add(std::uint64_t delta);

   private:
    friend class MetricsRegistry;
    Counter(MetricsRegistry* reg, std::size_t id) : reg_(reg), id_(id) {}
    MetricsRegistry* reg_ = nullptr;
    std::size_t id_ = 0;
  };

  /// Last-write-wins double value (single shared slot, not sharded: gauges
  /// record states, which do not sum across threads).
  class Gauge {
   public:
    Gauge() = default;
    void set(double value);

   private:
    friend class MetricsRegistry;
    Gauge(MetricsRegistry* reg, std::size_t id) : reg_(reg), id_(id) {}
    MetricsRegistry* reg_ = nullptr;
    std::size_t id_ = 0;
  };

  /// Fixed-bucket histogram handle; observe() is lock-free on the caller's
  /// shard like Counter::add.
  class Histogram {
   public:
    Histogram() = default;
    void observe(double value);

   private:
    friend class MetricsRegistry;
    Histogram(MetricsRegistry* reg, std::size_t id) : reg_(reg), id_(id) {}
    MetricsRegistry* reg_ = nullptr;
    std::size_t id_ = 0;
  };

  /// Registers (or finds) the named metric. Re-registering an existing name
  /// returns a handle to the same metric; for histograms the original
  /// bucket bounds stay authoritative. Names are free-form but the repo's
  /// convention is dotted lowercase: layer.noun[.qualifier] — see
  /// OBSERVABILITY.md.
  [[nodiscard]] Counter counter(const std::string& name);
  [[nodiscard]] Gauge gauge(const std::string& name);
  /// `bounds` must be strictly increasing and non-empty; they are upper
  /// bucket edges (v <= bound). Throws util::ConfigError otherwise.
  [[nodiscard]] Histogram histogram(const std::string& name,
                                    std::vector<double> bounds);

  /// Default latency edges for *_ms histograms (sub-ms to minutes).
  [[nodiscard]] static std::vector<double> latency_ms_bounds();
  /// Default edges for small concurrency-style quantities (0.25 .. 64).
  [[nodiscard]] static std::vector<double> concurrency_bounds();

  /// Merge-on-read view of everything registered so far.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Number of distinct metrics registered (counters + gauges + histograms).
  [[nodiscard]] std::size_t size() const;

  /// The process-wide registry used by all built-in instrumentation. Never
  /// destroyed (leaked on purpose so worker threads and static destructors
  /// can never observe a dead registry). First use arms the $LPM_METRICS
  /// exit snapshot.
  static MetricsRegistry& global();

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  /// Slow path: resolve (and cache) the calling thread's slot for metric
  /// `id`, creating the thread's shard on first touch.
  std::atomic<std::uint64_t>* counter_slot(std::size_t id);
  HistogramShard* histogram_shard(std::size_t id);

  /// Serial number distinguishing registry instances so a thread-local
  /// cache can never alias a dead registry reincarnated at the same
  /// address.
  const std::uint64_t serial_;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::map<std::string, std::size_t> counter_ids_;
  std::map<std::string, std::size_t> gauge_ids_;
  std::map<std::string, std::size_t> histogram_ids_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::unique_ptr<std::atomic<double>>> gauge_values_;
  std::vector<bool> gauge_set_;
  struct HistogramMeta {
    std::string name;
    std::vector<double> bounds;
  };
  std::vector<HistogramMeta> histogram_meta_;
};

/// One line summarizing the global registry for bench/example footers:
/// engine job counts, simulated cycles, and where the full snapshot/trace
/// went (or "off" when the env knobs are unset).
[[nodiscard]] std::string summary_line();

/// Writes the global registry's snapshot to `path` (JSON when the path
/// ends in .json, text otherwise). Returns false (after logging a warning)
/// instead of throwing when the file cannot be written. Called
/// automatically at exit when $LPM_METRICS is set.
bool dump_metrics(const std::string& path);

/// RAII wall-clock timer: observes the elapsed milliseconds into
/// `histogram` on destruction and optionally adds the same interval as a
/// `span_name` span on the global trace session (when tracing is on).
/// Also re-exported as lpm::exp::ScopedTimer for engine consumers.
class ScopedTimer {
 public:
  explicit ScopedTimer(MetricsRegistry::Histogram histogram,
                       const char* span_name = nullptr);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Milliseconds elapsed so far.
  [[nodiscard]] double elapsed_ms() const;

 private:
  MetricsRegistry::Histogram histogram_;
  const char* span_name_;
  std::uint64_t start_us_;
};

}  // namespace lpm::obs
