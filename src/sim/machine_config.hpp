// Whole-machine configuration: cores + private L1s + shared L2 + DRAM.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/core_config.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"

namespace lpm::sim {

struct MachineConfig {
  std::uint32_t num_cores = 1;
  cpu::CoreConfig core;        ///< template applied to every core
  mem::CacheConfig l1;         ///< template for each private L1
  mem::CacheConfig l2;         ///< shared last-level cache
  mem::DramConfig dram;
  /// Optional third cache level ("the extension to additional cache levels
  /// is straightforward", paper SIII): when enabled each core gets a
  /// private L2 between its L1 and the shared cache, which then acts as an
  /// L3/LLC. Adds a fourth matching ratio (LLC, MM) downstream.
  bool use_private_l2 = false;
  mem::CacheConfig private_l2;  ///< template for each private L2
  /// Optional per-core L1 size override (NUCA heterogeneity, Fig. 5);
  /// empty = uniform l1.size_bytes everywhere.
  std::vector<std::uint64_t> l1_size_per_core;
  std::uint64_t max_cycles = 200'000'000;  ///< runaway guard

  void validate() const;

  /// A sensible single-core default machine (config-A-like parallelism).
  [[nodiscard]] static MachineConfig single_core_default();

  /// The 16-core heterogeneous-L1 CMP of Case Study II (Fig. 5): four
  /// groups of four cores with 4/16/32/64 KB private L1 data caches.
  [[nodiscard]] static MachineConfig nuca16();

  /// A three-level single-core machine (private L1 + private L2 + shared
  /// LLC + DRAM), demonstrating the model's extension to deeper
  /// hierarchies.
  [[nodiscard]] static MachineConfig three_level_default();

  class Builder;
  /// Fluent construction starting from single_core_default(); the finished
  /// config is validated once, at build(). Preferred over mutating the bare
  /// struct field by field (which defers every mistake to System
  /// construction) — see DESIGN.md.
  [[nodiscard]] static Builder builder();
  /// Same, but starting from an existing config (e.g. nuca16()).
  [[nodiscard]] static Builder builder(MachineConfig base);
};

/// Builder for MachineConfig. Whole sub-configs can be replaced (`l1(cfg)`)
/// or tweaked in place (`with_l1([](auto& c) { c.mshr_entries = 8; })`);
/// build() validates the result and throws util::ConfigError on any
/// inconsistency, so an invalid machine never escapes construction.
class MachineConfig::Builder {
 public:
  Builder() = default;
  explicit Builder(MachineConfig base) : cfg_(std::move(base)) {}

  Builder& cores(std::uint32_t n) {
    cfg_.num_cores = n;
    return *this;
  }
  Builder& core(cpu::CoreConfig c) {
    cfg_.core = std::move(c);
    return *this;
  }
  Builder& l1(mem::CacheConfig c) {
    cfg_.l1 = std::move(c);
    return *this;
  }
  Builder& l2(mem::CacheConfig c) {
    cfg_.l2 = std::move(c);
    return *this;
  }
  Builder& private_l2(mem::CacheConfig c) {
    cfg_.use_private_l2 = true;
    cfg_.private_l2 = std::move(c);
    return *this;
  }
  Builder& dram(mem::DramConfig c) {
    cfg_.dram = std::move(c);
    return *this;
  }
  Builder& l1_sizes(std::vector<std::uint64_t> per_core) {
    cfg_.l1_size_per_core = std::move(per_core);
    return *this;
  }
  Builder& max_cycles(std::uint64_t n) {
    cfg_.max_cycles = n;
    return *this;
  }

  template <typename Fn>
  Builder& with_core(Fn&& fn) {
    fn(cfg_.core);
    return *this;
  }
  template <typename Fn>
  Builder& with_l1(Fn&& fn) {
    fn(cfg_.l1);
    return *this;
  }
  template <typename Fn>
  Builder& with_l2(Fn&& fn) {
    fn(cfg_.l2);
    return *this;
  }
  template <typename Fn>
  Builder& with_dram(Fn&& fn) {
    fn(cfg_.dram);
    return *this;
  }

  /// Validates and returns the finished config.
  [[nodiscard]] MachineConfig build() const;

 private:
  MachineConfig cfg_ = MachineConfig::single_core_default();
};

inline MachineConfig::Builder MachineConfig::builder() { return Builder{}; }
inline MachineConfig::Builder MachineConfig::builder(MachineConfig base) {
  return Builder{std::move(base)};
}

}  // namespace lpm::sim
