// Whole-machine configuration: cores + private L1s + shared L2 + DRAM.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/core_config.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"

namespace lpm::sim {

struct MachineConfig {
  std::uint32_t num_cores = 1;
  cpu::CoreConfig core;        ///< template applied to every core
  mem::CacheConfig l1;         ///< template for each private L1
  mem::CacheConfig l2;         ///< shared last-level cache
  mem::DramConfig dram;
  /// Optional third cache level ("the extension to additional cache levels
  /// is straightforward", paper SIII): when enabled each core gets a
  /// private L2 between its L1 and the shared cache, which then acts as an
  /// L3/LLC. Adds a fourth matching ratio (LLC, MM) downstream.
  bool use_private_l2 = false;
  mem::CacheConfig private_l2;  ///< template for each private L2
  /// Optional per-core L1 size override (NUCA heterogeneity, Fig. 5);
  /// empty = uniform l1.size_bytes everywhere.
  std::vector<std::uint64_t> l1_size_per_core;
  std::uint64_t max_cycles = 200'000'000;  ///< runaway guard

  void validate() const;

  /// A sensible single-core default machine (config-A-like parallelism).
  [[nodiscard]] static MachineConfig single_core_default();

  /// The 16-core heterogeneous-L1 CMP of Case Study II (Fig. 5): four
  /// groups of four cores with 4/16/32/64 KB private L1 data caches.
  [[nodiscard]] static MachineConfig nuca16();

  /// A three-level single-core machine (private L1 + private L2 + shared
  /// LLC + DRAM), demonstrating the model's extension to deeper
  /// hierarchies.
  [[nodiscard]] static MachineConfig three_level_default();
};

}  // namespace lpm::sim
