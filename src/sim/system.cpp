#include "sim/system.hpp"

#include "mem/perfect_memory.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace lpm::sim {

System::System(MachineConfig cfg, std::vector<trace::TraceSourcePtr> traces)
    : cfg_(std::move(cfg)), traces_(std::move(traces)) {
  cfg_.validate();
  util::require(traces_.size() == cfg_.num_cores,
                "System: need exactly one trace per core");
  for (const auto& t : traces_) {
    util::require(t != nullptr, "System: null trace");
  }

  dram_ = std::make_unique<mem::Dram>(cfg_.dram);
  dram_analyzer_ = std::make_unique<camat::Analyzer>("DRAM");
  dram_->set_probe(dram_analyzer_.get());

  mem::CacheConfig l2cfg = cfg_.l2;
  l2cfg.num_cores = cfg_.num_cores;
  l2_ = std::make_unique<mem::Cache>(l2cfg, dram_.get(), /*id_space=*/1000);
  l2_analyzer_ = std::make_unique<camat::Analyzer>("L2");
  l2_->set_probe(l2_analyzer_.get());

  l1s_.reserve(cfg_.num_cores);
  l1_analyzers_.reserve(cfg_.num_cores);
  cores_.reserve(cfg_.num_cores);
  for (std::uint32_t c = 0; c < cfg_.num_cores; ++c) {
    // Optional middle level: a private L2 between this core's L1 and the
    // shared cache (which then serves as the LLC).
    mem::MemoryLevel* below_l1 = l2_.get();
    if (cfg_.use_private_l2) {
      mem::CacheConfig l2pcfg = cfg_.private_l2;
      l2pcfg.name = "L2p." + std::to_string(c);
      l2pcfg.num_cores = cfg_.num_cores;
      l2pcfg.seed = cfg_.private_l2.seed + 17 * c;
      auto l2p =
          std::make_unique<mem::Cache>(l2pcfg, l2_.get(), /*id_space=*/500 + c);
      auto l2p_analyzer = std::make_unique<camat::Analyzer>(l2pcfg.name);
      l2p->set_probe(l2p_analyzer.get());
      below_l1 = l2p.get();
      private_l2s_.push_back(std::move(l2p));
      private_l2_analyzers_.push_back(std::move(l2p_analyzer));
    }

    mem::CacheConfig l1cfg = cfg_.l1;
    l1cfg.name = "L1." + std::to_string(c);
    if (!cfg_.l1_size_per_core.empty()) {
      l1cfg.size_bytes = cfg_.l1_size_per_core[c];
    }
    l1cfg.num_cores = cfg_.num_cores;
    l1cfg.seed = cfg_.l1.seed + c;
    auto l1 = std::make_unique<mem::Cache>(l1cfg, below_l1, /*id_space=*/100 + c);
    auto analyzer = std::make_unique<camat::Analyzer>(l1cfg.name);
    l1->set_probe(analyzer.get());

    cpu::CoreConfig core_cfg = cfg_.core;
    core_cfg.id = c;
    core_cfg.name = "core" + std::to_string(c);
    auto core = std::make_unique<cpu::OooCore>(core_cfg, traces_[c].get(),
                                               l1.get(), /*id_space=*/1 + c);
    l1s_.push_back(std::move(l1));
    l1_analyzers_.push_back(std::move(analyzer));
    cores_.push_back(std::move(core));
  }
}

System::~System() = default;

camat::Analyzer& System::l1_analyzer(std::size_t core) {
  return *l1_analyzers_.at(core);
}

bool System::finished() const {
  for (const auto& core : cores_) {
    if (!core->finished()) return false;
  }
  for (const auto& l2p : private_l2s_) {
    if (l2p->busy()) return false;
  }
  return !dram_->busy() && !l2_->busy();
}

bool System::step() {
  if (finished()) return false;
  // Bottom-up ticking: responses flow upward within the same cycle, demand
  // requests flow downward and begin service the cycle they are accepted.
  dram_->tick(now_);
  l2_->tick(now_);
  for (auto& l2p : private_l2s_) l2p->tick(now_);
  for (auto& l1 : l1s_) l1->tick(now_);
  for (auto& core : cores_) core->tick(now_);
  ++now_;
  return true;
}

namespace {

/// Polls the guard every check_interval cycles; throws TimeoutError once a
/// watchdog has flagged the run as over budget.
void check_guard(const RunGuard* guard, Cycle now) {
  if (guard == nullptr) return;
  const Cycle interval = guard->check_interval == 0 ? 1 : guard->check_interval;
  if (now % interval == 0 && guard->cancel.load(std::memory_order_relaxed)) {
    throw util::TimeoutError("simulation cancelled by watchdog at cycle " +
                             std::to_string(now));
  }
}

}  // namespace

namespace {

/// Run-epilogue telemetry: bulk-adds one run's totals to the global
/// registry (per-level cache and C-AMAT counters plus run/cycle tallies).
/// One call per run — the simulation loop itself is never instrumented, so
/// telemetry costs nothing per cycle.
void publish_run(const SystemResult& r, Cycle cycles_simulated) {
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("sim.runs").inc();
  reg.counter("sim.cycles").add(cycles_simulated);
  std::uint64_t instructions = 0;
  for (const auto& core : r.cores) instructions += core.instructions;
  reg.counter("sim.instructions").add(instructions);

  // Level names are stable regardless of topology: "l2" is always the
  // shared cache (the LLC when private L2s exist — then "l2p" also
  // appears); "dram" is the memory layer.
  for (std::size_t c = 0; c < r.l1_cache.size(); ++c) {
    r.l1_cache[c].publish(reg, "l1");
    r.l1[c].publish(reg, "l1");
  }
  for (std::size_t c = 0; c < r.l2_private_cache.size(); ++c) {
    r.l2_private_cache[c].publish(reg, "l2p");
    r.l2_private[c].publish(reg, "l2p");
  }
  r.l2_cache.publish(reg, "l2");
  r.l2.publish(reg, "l2");
  r.dram.publish(reg, "dram");
}

}  // namespace

SystemResult System::run(const RunGuard* guard) {
  obs::ScopedSpan span(obs::TraceSession::global(), "sim.run", "sim");
  const Cycle start_cycle = now_;
  while (now_ < cfg_.max_cycles) {
    check_guard(guard, now_);
    if (!step()) break;
  }
  if (!finalized_ && now_ > 0) {
    const Cycle last = now_ - 1;
    dram_->finalize(last);
    l2_->finalize(last);
    for (auto& l2p : private_l2s_) l2p->finalize(last);
    for (auto& l1 : l1s_) l1->finalize(last);
    finalized_ = true;
  }
  SystemResult r = collect();
  r.completed = finished();
  span.arg("cores", static_cast<double>(cfg_.num_cores));
  span.arg("cycles", static_cast<double>(now_ - start_cycle));
  publish_run(r, now_ - start_cycle);
  return r;
}

SystemResult System::collect() const {
  SystemResult r;
  r.completed = finished();
  r.cycles = now_;
  for (std::uint32_t c = 0; c < cfg_.num_cores; ++c) {
    r.cores.push_back(cores_[c]->stats());
    r.l1.push_back(l1_analyzers_[c]->metrics());
    r.l1_cache.push_back(l1s_[c]->stats());
    if (cfg_.use_private_l2) {
      r.l2_private.push_back(private_l2_analyzers_[c]->metrics());
      r.l2_private_cache.push_back(private_l2s_[c]->stats());
    }
  }
  r.l2 = l2_analyzer_->metrics();
  r.dram = dram_analyzer_->metrics();
  r.l2_cache = l2_->stats();
  r.dram_stats = dram_->stats();
  return r;
}

CpiExeResult measure_cpi_exe(const MachineConfig& cfg, trace::TraceSource& trace,
                             const RunGuard* guard) {
  trace.reset();
  // CPIexe is the processor's pure computation capability (Eq. 5): perfect
  // cache with unconstrained ports, so only issue width / window / ROB and
  // the program's dependences bind it. Memory-side limits (ports, MSHRs)
  // show up as data stall, not as CPIexe.
  mem::PerfectMemory perfect(cfg.l1.hit_latency, /*ports=*/0);
  cpu::CoreConfig core_cfg = cfg.core;
  core_cfg.id = 0;
  cpu::OooCore core(core_cfg, &trace, &perfect, /*id_space=*/1);

  Cycle now = 0;
  while (!core.finished() && now < cfg.max_cycles) {
    check_guard(guard, now);
    perfect.tick(now);
    core.tick(now);
    ++now;
  }
  util::require(core.finished(), "measure_cpi_exe: run did not complete");

  obs::MetricsRegistry::global().counter("sim.calibrations").inc();
  CpiExeResult out;
  out.instructions = core.stats().instructions;
  out.cycles = core.stats().cycles;
  out.cpi_exe = core.stats().cpi();
  out.fmem = core.stats().fmem();
  trace.reset();
  return out;
}

}  // namespace lpm::sim
