#include "sim/machine_config.hpp"

#include "util/error.hpp"

namespace lpm::sim {

void MachineConfig::validate() const {
  using util::require;
  require(num_cores >= 1, "MachineConfig: need at least one core");
  core.validate();
  l1.validate();
  l2.validate();
  if (use_private_l2) private_l2.validate();
  dram.validate();
  require(l1_size_per_core.empty() || l1_size_per_core.size() == num_cores,
          "MachineConfig: l1_size_per_core must match num_cores");
  require(max_cycles >= 1, "MachineConfig: max_cycles must be >= 1");
}

MachineConfig MachineConfig::Builder::build() const {
  cfg_.validate();
  return cfg_;
}

MachineConfig MachineConfig::single_core_default() {
  MachineConfig m;
  m.num_cores = 1;

  m.core.name = "core0";
  m.core.issue_width = 4;
  m.core.dispatch_width = 4;
  m.core.commit_width = 4;
  m.core.iw_size = 32;
  m.core.rob_size = 32;
  m.core.lsq_size = 16;

  m.l1.name = "L1";
  m.l1.size_bytes = 32 * 1024;
  m.l1.block_bytes = 64;
  m.l1.associativity = 4;
  m.l1.hit_latency = 3;
  m.l1.ports = 1;
  m.l1.banks = 1;
  m.l1.mshr_entries = 4;
  m.l1.mshr_targets = 8;
  m.l1.prefetch_degree = 6;  // tagged next-N-line streamer, MSHR-throttled

  m.l2.name = "L2";
  m.l2.size_bytes = 1024 * 1024;
  m.l2.block_bytes = 64;
  m.l2.associativity = 8;
  m.l2.hit_latency = 12;
  m.l2.ports = 2;
  m.l2.banks = 4;
  m.l2.interleave_bytes = 64;
  m.l2.mshr_entries = 16;
  m.l2.mshr_targets = 8;

  return m;
}

MachineConfig MachineConfig::nuca16() {
  MachineConfig m = single_core_default();
  m.num_cores = 16;

  // A balanced per-core pipeline so the L1 size is the differentiator.
  m.core.issue_width = 4;
  m.core.iw_size = 64;
  m.core.rob_size = 64;
  m.core.lsq_size = 16;

  m.l1.ports = 2;
  m.l1.mshr_entries = 8;
  m.l1.num_cores = 16;

  // Shared LLC sized and banked for sixteen clients: the paper's CMP keeps
  // the uncore from being the universal bottleneck so that private-L1
  // placement is what differentiates schedules.
  m.l2.size_bytes = 8 * 1024 * 1024;
  m.l2.associativity = 16;
  // Two accept slots per cycle: enough for a well-placed mix, congested
  // when misplaced programs flood the LLC with avoidable miss traffic -
  // the interference channel that differentiates schedules (Fig. 8).
  m.l2.ports = 2;
  m.l2.banks = 16;
  m.l2.mshr_entries = 64;
  m.l2.mshr_targets = 8;
  m.l2.writeback_capacity = 32;
  m.l2.num_cores = 16;

  // Memory bandwidth scaled for sixteen cores (multi-channel): the
  // streaming programs must not saturate DRAM on their own, or no schedule
  // can influence anything.
  m.dram.banks = 64;
  m.dram.queue_capacity = 256;
  m.dram.max_issue_per_cycle = 8;
  m.dram.frontend_latency = 24;

  // Fig. 5: four groups of four cores with 4/16/32/64 KB private L1s.
  m.l1_size_per_core.clear();
  const std::uint64_t sizes[4] = {4 * 1024, 16 * 1024, 32 * 1024, 64 * 1024};
  for (std::uint32_t g = 0; g < 4; ++g) {
    for (std::uint32_t c = 0; c < 4; ++c) {
      m.l1_size_per_core.push_back(sizes[g]);
    }
  }
  return m;
}

MachineConfig MachineConfig::three_level_default() {
  MachineConfig m = single_core_default();
  m.use_private_l2 = true;

  m.private_l2.name = "L2p";
  m.private_l2.size_bytes = 256 * 1024;
  m.private_l2.block_bytes = 64;
  m.private_l2.associativity = 8;
  m.private_l2.hit_latency = 10;
  m.private_l2.ports = 2;
  m.private_l2.banks = 2;
  m.private_l2.mshr_entries = 12;
  m.private_l2.mshr_targets = 8;

  // The shared cache becomes a proper LLC.
  m.l2.name = "LLC";
  m.l2.size_bytes = 4 * 1024 * 1024;
  m.l2.associativity = 16;
  m.l2.hit_latency = 24;
  m.l2.ports = 2;
  m.l2.banks = 8;
  m.l2.mshr_entries = 32;
  return m;
}

}  // namespace lpm::sim
