// The full simulated system: trace-driven cores over a two-level cache
// hierarchy and DRAM, with a C-AMAT analyzer attached to every layer.
// This is the gem5+DRAMSim2 substitute (DESIGN.md §2).
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "camat/analyzer.hpp"
#include "cpu/ooo_core.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "sim/machine_config.hpp"
#include "trace/trace_source.hpp"

namespace lpm::sim {

/// Everything measured by one run.
struct SystemResult {
  bool completed = false;   ///< false = hit max_cycles
  Cycle cycles = 0;         ///< cycles until every core drained
  std::vector<cpu::CoreStats> cores;
  std::vector<camat::CamatMetrics> l1;  ///< per-core L1 C-AMAT metrics
  camat::CamatMetrics l2;               ///< shared L2/LLC (aggregate)
  camat::CamatMetrics dram;             ///< memory layer ("L3" in LPMR3)
  std::vector<mem::CacheStats> l1_cache;
  mem::CacheStats l2_cache;
  mem::DramStats dram_stats;
  /// Per-core private L2 metrics when the machine has three cache levels
  /// (empty otherwise); the shared fields above then describe the LLC.
  std::vector<camat::CamatMetrics> l2_private;
  std::vector<mem::CacheStats> l2_private_cache;
  [[nodiscard]] bool has_private_l2() const { return !l2_private.empty(); }

  /// L1 miss rate of core c (demand misses / demand accesses).
  [[nodiscard]] double mr1(std::size_t c) const { return l1_cache.at(c).miss_rate(); }
  /// Aggregate L2 miss rate.
  [[nodiscard]] double mr2() const { return l2_cache.miss_rate(); }

  /// Exact whole-run equality: every counter of every layer must match.
  /// This is the currency of the differential oracle (src/check): the
  /// optimized System and the reference model must produce == results.
  friend bool operator==(const SystemResult&, const SystemResult&) = default;
};

/// Cooperative cancellation for run(): an external watchdog (the experiment
/// engine's, when a job timeout is configured) sets `cancel`; the run loop
/// polls it every `check_interval` simulated cycles and throws
/// util::TimeoutError. Threads are never killed — the simulation unwinds
/// through its own stack, so no System is ever left half-ticked.
struct RunGuard {
  std::atomic<bool> cancel{false};
  /// Cycles between polls. Coarse enough that the atomic load is free,
  /// fine enough that cancellation lands within microseconds of wall time.
  Cycle check_interval = 4096;
};

class System {
 public:
  /// One trace per core (sizes must match cfg.num_cores). Traces are owned
  /// by the system for the duration of the run.
  System(MachineConfig cfg, std::vector<trace::TraceSourcePtr> traces);
  ~System();
  System(const System&) = delete;
  System& operator=(const System&) = delete;

  /// Runs to completion (all cores drained) or cfg.max_cycles. A non-null
  /// `guard` makes the run cancellable: util::TimeoutError is thrown at the
  /// next check interval after guard->cancel becomes true.
  SystemResult run(const RunGuard* guard = nullptr);

  /// Single-cycle stepping for tests; returns false once finished.
  bool step();
  [[nodiscard]] Cycle now() const { return now_; }
  [[nodiscard]] bool finished() const;
  /// Collects results at any point (normally after run()).
  [[nodiscard]] SystemResult collect() const;

  [[nodiscard]] const MachineConfig& config() const { return cfg_; }
  [[nodiscard]] camat::Analyzer& l1_analyzer(std::size_t core);
  [[nodiscard]] camat::Analyzer& l2_analyzer() { return *l2_analyzer_; }
  [[nodiscard]] cpu::OooCore& core(std::size_t idx) { return *cores_.at(idx); }
  /// Live handle to a core's L1 for online reconfiguration (paper SIV).
  [[nodiscard]] mem::Cache& l1_cache(std::size_t core) { return *l1s_.at(core); }

 private:
  MachineConfig cfg_;
  std::vector<trace::TraceSourcePtr> traces_;
  std::unique_ptr<mem::Dram> dram_;
  std::unique_ptr<camat::Analyzer> dram_analyzer_;
  std::unique_ptr<mem::Cache> l2_;
  std::unique_ptr<camat::Analyzer> l2_analyzer_;
  std::vector<std::unique_ptr<mem::Cache>> private_l2s_;
  std::vector<std::unique_ptr<camat::Analyzer>> private_l2_analyzers_;
  std::vector<std::unique_ptr<mem::Cache>> l1s_;
  std::vector<std::unique_ptr<camat::Analyzer>> l1_analyzers_;
  std::vector<std::unique_ptr<cpu::OooCore>> cores_;
  Cycle now_ = 0;
  bool finalized_ = false;
};

/// Measures CPIexe and fmem: the core re-runs `trace` against a perfect
/// memory with the L1's hit latency and port count (no misses possible).
struct CpiExeResult {
  double cpi_exe = 0.0;
  double fmem = 0.0;
  std::uint64_t instructions = 0;
  Cycle cycles = 0;
};
CpiExeResult measure_cpi_exe(const MachineConfig& cfg, trace::TraceSource& trace,
                             const RunGuard* guard = nullptr);

}  // namespace lpm::sim
