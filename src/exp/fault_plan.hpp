// Deterministic fault injection for the experiment engine.
//
// A FaultPlan maps *executed-point indices* to failure modes, so every
// retry / timeout / degradation path in the engine can be exercised by unit
// tests and CI instead of waiting for production to hit them:
//
//   LPM_FAULT_SPEC="throw@3,hang@7,io@12"
//
// makes the 3rd executed point throw a SimError, the 7th hang until the
// watchdog cancels it (TimeoutError), and the 12th throw an IoError.
// Indices are 1-based and count *distinct points the engine decides to
// simulate, in submission order* — cache hits and journal skips do not
// consume an index, and the numbering is identical for a serial and a
// pooled engine (the index is assigned on the submitting thread, not when
// a worker happens to pick the job up). A fault fires on the job's first
// attempt only, so a retrying engine recovers deterministically.
//
// Thread safety: parsing (FaultPlan::parse / from_env) builds an immutable
// plan; at(), empty() and to_string() are const lookups, safe from any
// thread. The executed-point counter lives in the engine (advanced on the
// submitting thread only); workers receive the already-resolved
// std::optional<FaultKind> by value, so the plan is never mutated after
// construction.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace lpm::exp {

enum class FaultKind {
  kThrow,  ///< util::SimError from inside the job
  kHang,   ///< blocks until the watchdog cancels it -> util::TimeoutError
  kIo,     ///< util::IoError from inside the job
};

[[nodiscard]] const char* to_string(FaultKind kind);

struct FaultPlan {
  /// 1-based executed-point index -> failure mode.
  std::map<std::uint64_t, FaultKind> points;

  /// Parses "kind@index[,kind@index...]" (kinds: throw | hang | io).
  /// Throws util::ConfigError on malformed specs or duplicate indices.
  [[nodiscard]] static FaultPlan parse(const std::string& spec);

  /// Plan from $LPM_FAULT_SPEC; empty if unset. A malformed spec is
  /// reported and ignored rather than killing the host process.
  [[nodiscard]] static FaultPlan from_env();

  [[nodiscard]] bool empty() const { return points.empty(); }
  [[nodiscard]] std::optional<FaultKind> at(std::uint64_t index) const;
  [[nodiscard]] std::string to_string() const;
};

}  // namespace lpm::exp
