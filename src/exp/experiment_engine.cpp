#include "exp/experiment_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "exp/journal.hpp"
#include "exp/result_sink.hpp"
#include "obs/trace.hpp"
#include "trace/spec_like.hpp"
#include "trace/synthetic.hpp"
#include "util/fingerprint.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace lpm::exp {

namespace {

unsigned resolve_threads(unsigned requested) {
  if (requested > 0) return std::min(requested, 256u);
  if (const char* env = std::getenv("LPM_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<unsigned>(std::min<long>(v, 256));
    util::log_warn() << "ignoring invalid LPM_THREADS='" << env << "'";
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::uint64_t env_u64_or(const char* name, std::uint64_t dflt) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return dflt;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == nullptr || *end != '\0') {
    util::log_warn() << "ignoring invalid " << name << "='" << env << "'";
    return dflt;
  }
  return v;
}

/// Error classification for arbitrary exceptions escaping a job.
util::ErrorCode code_of(const std::exception& e) {
  if (const auto* lpm = dynamic_cast<const util::LpmError*>(&e)) {
    return lpm->code() == util::ErrorCode::kNone ? util::ErrorCode::kGeneric
                                                 : lpm->code();
  }
  return util::ErrorCode::kSim;
}

bool retryable(util::ErrorCode code) {
  // Config errors are deterministic rejections of the inputs: the retry
  // would fail identically, so don't burn attempts on it.
  return code != util::ErrorCode::kConfig;
}

/// One pause/yield step of a bounded spin (step counts up from 0).
inline void spin_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

/// Process-wide backend-executor registry. Executors are identified by
/// name only, so a job's fingerprint stays stable across processes while
/// the dispatch stays pluggable (src/model registers "rdh" / "fa").
///
/// Reads are lock-free: the executor map is an immutable snapshot behind
/// one atomic pointer, and registration (rare — a handful of calls at
/// startup, idempotent re-registrations after) copies the map, inserts,
/// and publishes the copy. Old snapshots are retired, never freed, so an
/// executor pointer handed to a reader stays valid for the process
/// lifetime even if a test re-registers the name mid-flight.
struct BackendRegistry {
  using Map = std::unordered_map<std::string, BackendExecutor>;

  std::mutex write_mutex;
  std::vector<std::unique_ptr<const Map>> snapshots;  ///< newest last; all kept alive
  std::atomic<const Map*> current{nullptr};

  static BackendRegistry& instance() {
    static BackendRegistry& registry = *new BackendRegistry;  // leaked: outlives workers
    return registry;
  }

  const BackendExecutor* find(const std::string& name) const {
    const Map* map = current.load(std::memory_order_acquire);
    if (map == nullptr) return nullptr;
    const auto it = map->find(name);
    return it == map->end() ? nullptr : &it->second;
  }

  void put(const std::string& name, BackendExecutor executor) {
    const std::lock_guard<std::mutex> lock(write_mutex);
    const Map* old = current.load(std::memory_order_relaxed);
    auto next = std::make_unique<Map>(old != nullptr ? *old : Map{});
    (*next)[name] = std::move(executor);
    current.store(next.get(), std::memory_order_release);
    snapshots.push_back(std::move(next));
  }
};

}  // namespace

std::optional<AffinityPolicy> parse_affinity_policy(std::string_view name) {
  if (name == "none") return AffinityPolicy::kNone;
  if (name == "compact") return AffinityPolicy::kCompact;
  if (name == "spread") return AffinityPolicy::kSpread;
  return std::nullopt;
}

void ExperimentEngine::register_backend_executor(const std::string& name,
                                                 BackendExecutor executor) {
  util::require(!name.empty(), "register_backend_executor: empty name");
  util::require(name != kCycleBackend,
                "register_backend_executor: the cycle backend is built in");
  util::require(executor != nullptr,
                "register_backend_executor: null executor for '" + name + "'");
  BackendRegistry::instance().put(name, std::move(executor));
}

bool ExperimentEngine::has_backend_executor(const std::string& name) {
  if (name == kCycleBackend) return true;
  return BackendRegistry::instance().find(name) != nullptr;
}

const SimResultPtr& SimJobOutcome::value() const {
  if (result != nullptr) return result;
  if (skipped) {
    util::throw_error(util::ErrorCode::kGeneric,
                      "SimJobOutcome: point " + util::fingerprint_hex(fingerprint) +
                          " was journal-skipped (no in-process result)");
  }
  util::throw_error(error == util::ErrorCode::kNone ? util::ErrorCode::kGeneric
                                                    : error,
                    error_message);
}

SimJob SimJob::solo(sim::MachineConfig machine, trace::WorkloadProfile workload,
                    bool calibrate, std::string tag) {
  SimJob job;
  job.machine = std::move(machine);
  job.machine.num_cores = 1;
  if (tag.empty()) tag = workload.name;
  job.workloads.push_back(std::move(workload));
  job.calibrate = calibrate;
  job.tag = std::move(tag);
  return job;
}

void SimJob::validate() const {
  machine.validate();
  // Messages with interpolated values are built inside the unlikely branch
  // only: validate() runs once per submitted job, so its success path must
  // stay allocation-free (see util::require's header note).
  if (workloads.size() != machine.num_cores) [[unlikely]] {
    throw util::ConfigError("SimJob: need exactly one workload per core (" +
                            std::to_string(workloads.size()) +
                            " workloads for " +
                            std::to_string(machine.num_cores) + " cores)");
  }
  for (const auto& wl : workloads) wl.validate();
  if (!ExperimentEngine::has_backend_executor(backend)) [[unlikely]] {
    throw util::ConfigError("SimJob: unknown backend '" + backend +
                            "' (no registered executor)");
  }
}

std::uint64_t SimJob::fingerprint() const {
  util::Fingerprint f;
  // v2: the backend joined the key so analytic and cycle evaluations of
  // the same (machine, workloads) never alias in the memo cache.
  f.mix("SimJob/v2");
  f.mix_u64(util::fingerprint(machine));
  f.mix(workloads.size());
  for (const auto& wl : workloads) f.mix_u64(util::fingerprint(wl));
  f.mix(calibrate);
  f.mix(backend);
  return f.value();
}

/// Per-batch coordination: the submit side resolves jobs into execution
/// groups (one per distinct fingerprint), workers fill one cache-line-
/// aligned outcome slot per group (single writer, no lock), and the
/// submitting thread merges slots back into submission order after the
/// completion barrier. The barrier itself is the last-finisher-notifies
/// pattern: workers only touch ctx.mutex when remaining hits zero, and the
/// notify happens under the mutex because the submitter owns BatchCtx on
/// its stack and destroys it the moment its wait returns.
struct BatchCtx {
  struct Group {
    std::uint64_t fp = 0;
    const SimJob* job = nullptr;
    /// First submission index served by this group (the executor slot).
    /// Duplicates are rare, so keeping the common case inline avoids a
    /// heap allocation per group on the submit path.
    std::size_t first = 0;
    /// Further submission indices served by the one execution.
    std::vector<std::size_t> dups;
    /// Executed-point number consumed by the fault plan.
    std::uint64_t fault_index = 0;
  };
  struct alignas(64) Slot {
    SimJobOutcome out;
  };

  std::vector<Group> groups;
  std::vector<Slot> slots;
  FailurePolicy policy = FailurePolicy::kFailFast;
  std::atomic<bool> abort{false};
  std::atomic<std::size_t> remaining{0};
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
};

ExperimentEngine::Options ExperimentEngine::Options::Builder::build() const {
  util::require(opts_.threads <= 256,
                "EngineOptions: threads must be <= 256 (0 = auto)");
  util::require(opts_.queue_capacity >= 1 &&
                    (opts_.queue_capacity & (opts_.queue_capacity - 1)) == 0,
                "EngineOptions: queue_capacity must be a power of two >= 1");
  if (opts_.affinity != AffinityPolicy::kNone && opts_.threads > 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    // hw == 0 means "unknown" — degrade silently at pin time instead of
    // rejecting a configuration the platform cannot even describe.
    if (hw > 0 && opts_.threads > hw) {
      throw util::ConfigError(
          "EngineOptions: affinity '" +
          std::string(affinity_policy_name(opts_.affinity)) + "' with " +
          std::to_string(opts_.threads) + " threads exceeds the " +
          std::to_string(hw) +
          " hardware threads — pinning more workers than CPUs thrashes "
          "instead of isolating (drop the affinity or the thread count)");
    }
  }
  return opts_;
}

ExperimentEngine::ExperimentEngine() : ExperimentEngine(Options{}) {}

ExperimentEngine::ExperimentEngine(Options opts)
    : threads_(resolve_threads(opts.threads)),
      queue_capacity_(opts.queue_capacity),
      affinity_(opts.affinity),
      cache_enabled_(opts.cache_enabled),
      max_retries_(opts.max_retries),
      retry_backoff_base_ms_(opts.retry_backoff_base_ms),
      backoff_seed_(opts.backoff_seed),
      job_timeout_ms_(opts.job_timeout_ms),
      default_policy_(opts.policy),
      fault_plan_(std::move(opts.fault_plan)),
      journal_(opts.journal),
      sink_(opts.sink) {
  // Resolve registry handles (and thereby touch the global registry +
  // trace session) before any worker exists: the $LPM_METRICS/$LPM_TRACE
  // exit hooks are then registered ahead of this engine's static-teardown
  // slot, so a shared() engine joins its pool before the final snapshot
  // and the trace-file close.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::TraceSession::global();
  obs_ = Instruments{
      reg.counter("exp.jobs.submitted"),
      reg.counter("exp.jobs.executed"),
      reg.counter("exp.jobs.cache_hits"),
      reg.counter("exp.jobs.failed"),
      reg.counter("exp.jobs.retries"),
      reg.counter("exp.jobs.timeouts"),
      reg.counter("exp.jobs.faults_injected"),
      reg.counter("exp.jobs.journal_skips"),
      reg.counter("exp.queue.enqueue_spins"),
      reg.counter("exp.queue.pop_spins"),
      reg.counter("exp.queue.parks"),
      reg.counter("exp.workers.pinned"),
      reg.counter("exp.workers.pin_failed"),
      reg.histogram("exp.job.queue_wait_ms",
                    obs::MetricsRegistry::latency_ms_bounds()),
      reg.histogram("exp.job.run_ms",
                    obs::MetricsRegistry::latency_ms_bounds()),
      reg.histogram("exp.batch.size",
                    {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}),
      reg.histogram("exp.queue.depth",
                    {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}),
      reg.histogram("exp.worker.tasks",
                    {1, 4, 16, 64, 256, 1024, 4096, 16384, 65536}),
  };
  util::require(queue_capacity_ >= 1 &&
                    (queue_capacity_ & (queue_capacity_ - 1)) == 0,
                "ExperimentEngine: queue_capacity must be a power of two >= 1");
  // threads_ == 1 means strictly serial: jobs run inline on the submitting
  // thread and no pool exists (the reference configuration for the
  // determinism tests).
  if (threads_ > 1) {
    ring_ = std::make_unique<MpmcRing<TaskItem>>(queue_capacity_);
    worker_shards_ = std::make_unique<WorkerShard[]>(threads_);
    workers_.reserve(threads_);
    for (unsigned i = 0; i < threads_; ++i) {
      workers_.emplace_back([this, i] { worker_loop(static_cast<int>(i)); });
    }
  }
  if (job_timeout_ms_ > 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

ExperimentEngine::~ExperimentEngine() {
  shutting_down_.store(true, std::memory_order_seq_cst);
  if (!workers_.empty()) {
    // The empty critical section orders the notify after any in-progress
    // park decision; parked workers also wake on their own within 2 ms.
    { const std::lock_guard<std::mutex> lock(park_mutex_); }
    park_cv_.notify_all();
    for (auto& w : workers_) w.join();
    for (unsigned i = 0; i < threads_; ++i) {
      obs_.worker_tasks.observe(static_cast<double>(
          worker_shards_[i].tasks.load(std::memory_order_relaxed)));
    }
  }
  if (watchdog_.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(watchdog_mutex_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.notify_all();
    watchdog_.join();
  }
}

std::vector<std::uint64_t> ExperimentEngine::worker_task_counts() const {
  std::vector<std::uint64_t> counts;
  if (worker_shards_ == nullptr) return counts;
  counts.reserve(threads_);
  for (unsigned i = 0; i < threads_; ++i) {
    counts.push_back(worker_shards_[i].tasks.load(std::memory_order_relaxed));
  }
  return counts;
}

namespace {

/// Pins the calling thread to one CPU chosen from the allowed set by
/// `policy`. Returns: 1 = pinned, 0 = skipped (policy none, affinity
/// unreadable, or fewer than two allowed CPUs — nothing to place), -1 =
/// the set call itself was rejected (restricted cpuset). Linux-only; other
/// platforms always skip.
int pin_worker_thread(unsigned index, unsigned total, AffinityPolicy policy) {
#if defined(__linux__)
  if (policy == AffinityPolicy::kNone) return 0;
  cpu_set_t allowed;
  CPU_ZERO(&allowed);
  if (sched_getaffinity(0, sizeof(allowed), &allowed) != 0) return 0;
  std::vector<int> cpus;
  for (int c = 0; c < CPU_SETSIZE; ++c) {
    if (CPU_ISSET(c, &allowed)) cpus.push_back(c);
  }
  if (cpus.size() < 2) return 0;
  std::size_t slot = 0;
  if (policy == AffinityPolicy::kCompact) {
    slot = index % cpus.size();
  } else {
    slot = (static_cast<std::size_t>(index) * cpus.size()) /
           std::max(1u, total) % cpus.size();
  }
  cpu_set_t target;
  CPU_ZERO(&target);
  CPU_SET(cpus[slot], &target);
  return pthread_setaffinity_np(pthread_self(), sizeof(target), &target) == 0
             ? 1
             : -1;
#else
  (void)index;
  (void)total;
  (void)policy;
  return 0;
#endif
}

}  // namespace

void ExperimentEngine::worker_loop(int worker_id) {
  util::set_thread_worker_id(worker_id);
  switch (pin_worker_thread(static_cast<unsigned>(worker_id), threads_,
                            affinity_)) {
    case 1:
      workers_pinned_.fetch_add(1, std::memory_order_relaxed);
      obs_.workers_pinned.inc();
      break;
    case -1:
      // Silent degradation: the worker runs unpinned and only the counter
      // records that the cpuset refused the request.
      workers_pin_failed_.fetch_add(1, std::memory_order_relaxed);
      obs_.workers_pin_failed.inc();
      break;
    default: break;
  }
  WorkerShard& shard = worker_shards_[worker_id];
  TaskItem item;
  while (next_task(item)) {
    shard.tasks.fetch_add(1, std::memory_order_relaxed);
    run_task(item);
  }
}

void ExperimentEngine::push_task(TaskItem item) {
  // Queue telemetry is sampled (every 16th group of a batch): a clock read
  // plus two histogram observations per push would cost a meaningful slice
  // of the push itself. Spin counters stay exact — they only pay when the
  // ring pushes back.
  const bool sampled = (item.group & 15u) == 0;
  if (sampled) item.enqueued_at = std::chrono::steady_clock::now();
  unsigned spins = 0;
  while (!ring_->try_push(item)) {
    // Full ring: the batch outruns the pool. Back off without a lock —
    // a worker must finish a task before a slot frees, so after a short
    // pause burst yielding is strictly better than burning the core
    // (essential on single-CPU runners, where the spinning submitter
    // would otherwise starve the worker it is waiting on).
    ++spins;
    if (spins < 32) {
      spin_pause();
    } else {
      std::this_thread::yield();
    }
  }
  if (spins > 0) obs_.queue_enqueue_spins.add(spins);
  if (sampled) {
    obs_.queue_depth.observe(static_cast<double>(ring_->size_approx()));
  }
  // Dekker handshake with next_task(): the seq_cst fence orders our ring
  // publication before the parked_ read, and the consumer's seq_cst
  // parked_ increment before its ring re-check — one side always sees the
  // other, so the wake cannot be lost.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (parked_.load(std::memory_order_relaxed) > 0) {
    const std::lock_guard<std::mutex> lock(park_mutex_);
    park_cv_.notify_one();
  }
}

bool ExperimentEngine::next_task(TaskItem& item) {
  constexpr unsigned kPauseSpins = 64;   // ~cheap: stay hot for short gaps
  constexpr unsigned kYieldSpins = 8;    // then cede the core
  unsigned spins = 0;
  for (;;) {
    if (ring_->try_pop(item)) {
      if (spins > 0) obs_.queue_pop_spins.add(spins);
      return true;
    }
    if (shutting_down_.load(std::memory_order_acquire)) {
      // Drain-then-exit: a task pushed just before shutdown must still
      // run (its batch is blocked on it).
      return ring_->try_pop(item);
    }
    ++spins;
    if (spins <= kPauseSpins) {
      spin_pause();
      continue;
    }
    if (spins <= kPauseSpins + kYieldSpins) {
      std::this_thread::yield();
      continue;
    }
    // Park. The seq_cst increment is the consumer half of the Dekker
    // handshake in push_task(); re-check the ring after it so a push that
    // missed our parked_ flag is seen here instead.
    parked_.fetch_add(1, std::memory_order_seq_cst);
    if (ring_->try_pop(item)) {
      parked_.fetch_sub(1, std::memory_order_relaxed);
      obs_.queue_pop_spins.add(spins);
      return true;
    }
    if (shutting_down_.load(std::memory_order_acquire)) {
      parked_.fetch_sub(1, std::memory_order_relaxed);
      return ring_->try_pop(item);
    }
    {
      std::unique_lock<std::mutex> lock(park_mutex_);
      park_cv_.wait_for(lock, std::chrono::milliseconds(2));
    }
    parked_.fetch_sub(1, std::memory_order_relaxed);
    obs_.queue_parks.inc();
    spins = 0;
  }
}

// --- watchdog -------------------------------------------------------------

std::uint64_t ExperimentEngine::watchdog_register(
    std::shared_ptr<sim::RunGuard> guard) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(job_timeout_ms_);
  std::uint64_t ticket = 0;
  {
    const std::lock_guard<std::mutex> lock(watchdog_mutex_);
    ticket = ++watchdog_next_ticket_;
    watchdog_entries_.emplace(ticket, WatchdogEntry{deadline, std::move(guard)});
  }
  watchdog_cv_.notify_all();  // new, possibly nearer deadline
  return ticket;
}

void ExperimentEngine::watchdog_unregister(std::uint64_t ticket) {
  const std::lock_guard<std::mutex> lock(watchdog_mutex_);
  watchdog_entries_.erase(ticket);
}

void ExperimentEngine::watchdog_loop() {
  util::set_thread_worker_id(-1);
  std::unique_lock<std::mutex> lock(watchdog_mutex_);
  while (!watchdog_stop_) {
    auto wake = std::chrono::steady_clock::now() + std::chrono::milliseconds(50);
    for (const auto& [ticket, entry] : watchdog_entries_) {
      wake = std::min(wake, entry.deadline);
    }
    watchdog_cv_.wait_until(lock, wake);
    if (watchdog_stop_) break;
    const auto now = std::chrono::steady_clock::now();
    for (auto it = watchdog_entries_.begin(); it != watchdog_entries_.end();) {
      if (it->second.deadline <= now) {
        // Mark only: the job notices at its next guard poll and unwinds
        // through TimeoutError on its own stack.
        it->second.guard->cancel.store(true, std::memory_order_relaxed);
        it = watchdog_entries_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

// --- execution ------------------------------------------------------------

SimJobResult ExperimentEngine::execute(const SimJob& job,
                                       const sim::RunGuard* guard,
                                       std::optional<FaultKind> fault) {
  const auto start = std::chrono::steady_clock::now();
  // The span is built only when a trace session is live: ScopedSpan's
  // name/category strings are per-execute cost on a path measured in
  // nanoseconds, and with tracing off they would be built just to be
  // thrown away.
  std::optional<obs::ScopedSpan> span;
  if (obs::TraceSession* trace = obs::TraceSession::global()) {
    span.emplace(trace, "exp.execute", "exp");
    span->arg("cores", static_cast<double>(job.machine.num_cores));
  }
  if (fault.has_value()) {
    obs_.faults_injected.inc();
    switch (*fault) {
      case FaultKind::kThrow:
        throw util::SimError("injected fault: throw (job '" + job.tag + "')");
      case FaultKind::kIo:
        throw util::IoError("injected fault: io (job '" + job.tag + "')");
      case FaultKind::kHang:
        // A "hang" blocks exactly like a wedged simulation would, but
        // cooperatively: it waits for the watchdog to flip the cancel
        // flag, then unwinds the way a real over-budget run does.
        if (guard == nullptr) {
          throw util::TimeoutError("injected fault: hang with no watchdog "
                                   "configured (job '" + job.tag + "')");
        }
        while (!guard->cancel.load(std::memory_order_relaxed)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        throw util::TimeoutError("injected fault: hang cancelled by watchdog "
                                 "(job '" + job.tag + "')");
    }
  }
  SimJobResult out;
  if (job.backend == kCycleBackend) {
    std::vector<trace::TraceSourcePtr> traces;
    traces.reserve(job.workloads.size());
    for (const auto& wl : job.workloads) {
      traces.push_back(trace::make_trace(wl));
    }
    sim::System system(job.machine, std::move(traces));
    out.run = system.run(guard);
    if (job.calibrate) {
      out.calib.reserve(job.workloads.size());
      for (const auto& wl : job.workloads) {
        const trace::TraceSourcePtr calib_trace = trace::make_trace(wl);
        out.calib.push_back(
            sim::measure_cpi_exe(job.machine, *calib_trace, guard));
      }
    }
  } else {
    // Lock-free snapshot lookup; the returned executor stays valid even if
    // the name is re-registered mid-flight (old snapshots are retired, not
    // freed). validate() already vetted the name; a null here means the
    // registry genuinely never saw it, so keep the typed error.
    const BackendExecutor* executor =
        BackendRegistry::instance().find(job.backend);
    if (executor == nullptr) {
      util::throw_error(util::ErrorCode::kConfig,
                        "no executor registered for backend '" + job.backend +
                            "' (job '" + job.tag + "')");
    }
    out = (*executor)(job, guard);
  }
  out.backend = job.backend;
  simulations_executed_.fetch_add(1, std::memory_order_relaxed);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const auto elapsed_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
  busy_nanos_.fetch_add(elapsed_ns, std::memory_order_relaxed);
  out.duration_ms = 1e-6 * static_cast<double>(elapsed_ns);
  obs_.jobs_executed.inc();
  obs_.run_ms.observe(1e-6 * static_cast<double>(elapsed_ns));
  return out;
}

std::uint64_t ExperimentEngine::retry_backoff_ms(std::uint64_t seed,
                                                 std::uint64_t fingerprint,
                                                 unsigned attempt,
                                                 std::uint64_t base_ms) {
  if (base_ms == 0) return 0;
  const unsigned shift = std::min(attempt >= 1 ? attempt - 1 : 0u, 16u);
  // Saturate instead of shifting blindly: a large base (or, before the
  // exponent clamp existed, a large attempt count) would wrap the shift and
  // come back as a near-zero delay — turning backoff into a retry storm.
  // Anything that would exceed the ceiling pins to kMaxRetryBackoffMs.
  std::uint64_t scaled = kMaxRetryBackoffMs;
  if (base_ms <= (kMaxRetryBackoffMs >> shift)) scaled = base_ms << shift;
  util::Rng rng(seed ^ fingerprint ^ (0x9e37u + attempt));
  const std::uint64_t jitter =
      rng.next_below(std::min(base_ms, kMaxRetryBackoffMs) + 1);
  return std::min(kMaxRetryBackoffMs, scaled + jitter);
}

SimJobOutcome ExperimentEngine::execute_with_retry(const SimJob& job,
                                                   std::uint64_t fingerprint,
                                                   std::uint64_t fault_index) {
  SimJobOutcome out;
  out.fingerprint = fingerprint;
  for (unsigned attempt = 1;; ++attempt) {
    out.attempts = attempt;
    std::shared_ptr<sim::RunGuard> guard;
    std::uint64_t ticket = 0;
    if (job_timeout_ms_ > 0) {
      guard = std::make_shared<sim::RunGuard>();
      ticket = watchdog_register(guard);
    }
    try {
      // Faults fire on the first attempt only: a retried job re-executes
      // clean, which is exactly the transient-failure scenario retries
      // exist for (persistent failures are modelled by max_retries = 0).
      const std::optional<FaultKind> fault =
          attempt == 1 ? fault_plan_.at(fault_index) : std::nullopt;
      auto result = std::make_shared<SimJobResult>(execute(job, guard.get(), fault));
      result->fingerprint = fingerprint;
      if (guard != nullptr) watchdog_unregister(ticket);
      out.result = std::move(result);
      out.error = util::ErrorCode::kNone;
      out.error_message.clear();
      return out;
    } catch (const std::exception& e) {
      if (guard != nullptr) watchdog_unregister(ticket);
      out.error = code_of(e);
      out.error_message = e.what();
      if (out.error == util::ErrorCode::kTimeout) obs_.timeouts.inc();
    } catch (...) {
      // Deliberately the only catch-all left in the engine: it converts an
      // unknown thrown type into a typed outcome instead of losing it.
      if (guard != nullptr) watchdog_unregister(ticket);
      out.error = util::ErrorCode::kSim;
      out.error_message = "unknown exception type escaped the job";
    }
    if (!retryable(out.error) || attempt > max_retries_) {
      jobs_failed_.fetch_add(1, std::memory_order_relaxed);
      obs_.jobs_failed.inc();
      return out;
    }
    retries_performed_.fetch_add(1, std::memory_order_relaxed);
    obs_.retries.inc();
    if (obs::TraceSession* session = obs::TraceSession::global()) {
      session->instant_event("exp.retry", "exp", session->now_us(),
                             {{"attempt", static_cast<double>(attempt)}});
    }
    const std::uint64_t delay =
        retry_backoff_ms(backoff_seed_, fingerprint, attempt, retry_backoff_base_ms_);
    util::log_warn() << "job '" << job.tag << "' attempt " << attempt
                     << " failed (" << util::error_code_name(out.error)
                     << "): " << out.error_message << " — retrying in " << delay
                     << "ms";
    if (delay > 0) std::this_thread::sleep_for(std::chrono::milliseconds(delay));
  }
}

// --- batch orchestration --------------------------------------------------

SimResultPtr ExperimentEngine::run(const SimJob& job) {
  return run_batch({job}).front();
}

std::vector<SimResultPtr> ExperimentEngine::run_batch(
    const std::vector<SimJob>& jobs) {
  // The journal is never consulted here: this API promises a result object
  // per job, which a journal skip cannot provide.
  auto outcomes = run_batch_impl(jobs, FailurePolicy::kFailFast,
                                 /*consult_journal=*/false);
  std::vector<SimResultPtr> results;
  results.reserve(outcomes.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (!outcomes[i].ok() &&
        outcomes[i].error != util::ErrorCode::kCancelled) {
      util::throw_error(outcomes[i].error,
                        "job '" + jobs[i].tag + "' (fingerprint " +
                            util::fingerprint_hex(outcomes[i].fingerprint) +
                            ", attempts " + std::to_string(outcomes[i].attempts) +
                            "): " + outcomes[i].error_message);
    }
  }
  for (auto& outcome : outcomes) results.push_back(std::move(outcome.result));
  return results;
}

std::vector<SimJobOutcome> ExperimentEngine::run_batch_outcomes(
    const std::vector<SimJob>& jobs) {
  return run_batch_impl(jobs, default_policy_, journal_ != nullptr);
}

std::vector<SimJobOutcome> ExperimentEngine::run_batch_outcomes(
    const std::vector<SimJob>& jobs, BatchOptions batch) {
  return run_batch_impl(jobs, batch.policy, batch.consult_journal);
}

void ExperimentEngine::run_group(BatchCtx& ctx, std::uint32_t gi) {
  const BatchCtx::Group& g = ctx.groups[gi];
  SimJobOutcome& out = ctx.slots[gi].out;  // single writer: this call
  // Fail-fast: jobs not yet started when an earlier one failed are
  // reported as cancelled, never silently dropped.
  if (ctx.policy == FailurePolicy::kFailFast &&
      ctx.abort.load(std::memory_order_acquire)) {
    out.fingerprint = g.fp;
    out.error = util::ErrorCode::kCancelled;
    out.error_message =
        "not started: an earlier job in the fail-fast batch failed";
    return;
  }
  out = execute_with_retry(*g.job, g.fp, g.fault_index);
  if (!out.ok() && ctx.policy == FailurePolicy::kFailFast &&
      out.error != util::ErrorCode::kCancelled) {
    ctx.abort.store(true, std::memory_order_release);
  }
}

void ExperimentEngine::run_task(const TaskItem& item) {
  // Only sampled tasks carry an enqueue timestamp (see push_task); the
  // default-constructed time_point marks the unsampled ones.
  if (item.enqueued_at != std::chrono::steady_clock::time_point{}) {
    obs_.queue_wait_ms.observe(
        1e-6 * static_cast<double>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - item.enqueued_at)
                       .count()));
  }
  BatchCtx& ctx = *item.ctx;
  run_group(ctx, item.group);
  // Only the batch's last finisher takes the mutex; everyone else just
  // decrements. Notify while holding the lock: the submitting thread owns
  // BatchCtx on its stack and destroys it as soon as its wait returns, so
  // an unlocked notify could signal a dead cv.
  if (ctx.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    const std::lock_guard<std::mutex> lock(ctx.mutex);
    ctx.done = true;
    ctx.cv.notify_one();
  }
}

obs::MetricsRegistry::Counter ExperimentEngine::backend_evals(
    const std::string& backend) {
  const std::lock_guard<std::mutex> lock(backend_evals_mutex_);
  auto it = backend_evals_.find(backend);
  if (it == backend_evals_.end()) {
    it = backend_evals_
             .emplace(backend, obs::MetricsRegistry::global().counter(
                                   "model.backend.evals." + backend))
             .first;
  }
  return it->second;
}

std::vector<SimJobOutcome> ExperimentEngine::run_batch_impl(
    const std::vector<SimJob>& jobs, FailurePolicy policy,
    bool consult_journal) {
  std::vector<SimJobOutcome> outcomes(jobs.size());
  if (jobs.empty()) return outcomes;
  obs::ScopedSpan batch_span(obs::TraceSession::global(), "exp.run_batch",
                             "exp");
  batch_span.arg("jobs", static_cast<double>(jobs.size()));
  obs_.jobs_submitted.add(jobs.size());
  obs_.batch_size.observe(static_cast<double>(jobs.size()));

  // Resolve fingerprints, validation failures, cache hits and journal
  // skips on the submitting thread; group the remainder so each distinct
  // point simulates exactly once. Groups keep submission order, which also
  // fixes the fault plan's executed-point numbering independently of the
  // worker pool.
  BatchCtx ctx;
  ctx.policy = policy;
  // Fingerprint dedup uses a flat linear-probe table (power-of-two sized,
  // at most half full) instead of an unordered_map: fingerprints are
  // already well-mixed 64-bit hashes, and a probe into a flat array costs
  // no per-node allocation on the submit hot path. The slot found by the
  // probe stays valid for the insert below — this thread is the table's
  // only writer.
  constexpr std::uint32_t kEmptySlot = 0xffffffffu;
  std::size_t table_cap = 16;
  while (table_cap < jobs.size() * 2) table_cap <<= 1;
  std::vector<std::uint64_t> dedup_fp(table_cap);
  std::vector<std::uint32_t> dedup_group(table_cap, kEmptySlot);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    try {
      jobs[i].validate();
    } catch (const util::LpmError& e) {
      outcomes[i].error = util::ErrorCode::kConfig;
      outcomes[i].error_message = e.what();
      continue;
    }
    const std::uint64_t fp = jobs[i].fingerprint();
    outcomes[i].fingerprint = fp;
    std::size_t slot = fp & (table_cap - 1);
    while (dedup_group[slot] != kEmptySlot && dedup_fp[slot] != fp) {
      slot = (slot + 1) & (table_cap - 1);
    }
    if (dedup_group[slot] != kEmptySlot) {
      ctx.groups[dedup_group[slot]].dups.push_back(i);
      continue;
    }
    if (cache_enabled_) {
      const std::lock_guard<std::mutex> lock(cache_mutex_);
      if (const auto it = cache_.find(fp); it != cache_.end()) {
        outcomes[i].result = it->second;
        outcomes[i].from_cache = true;
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        obs_.cache_hits.inc();
        continue;
      }
    }
    if (consult_journal && journal_ != nullptr && journal_->completed(fp)) {
      outcomes[i].skipped = true;
      journal_skips_.fetch_add(1, std::memory_order_relaxed);
      obs_.journal_skips.inc();
      continue;
    }
    dedup_fp[slot] = fp;
    dedup_group[slot] = static_cast<std::uint32_t>(ctx.groups.size());
    ctx.groups.push_back(BatchCtx::Group{fp, &jobs[i], i, {}, 0});
  }
  for (BatchCtx::Group& g : ctx.groups) {
    g.fault_index = fault_cursor_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  if (!ctx.groups.empty()) {
    ctx.slots = std::vector<BatchCtx::Slot>(ctx.groups.size());
    const auto n_groups = static_cast<std::uint32_t>(ctx.groups.size());
    if (threads_ == 1) {
      // Serial reference path: groups run inline, in submission order.
      for (std::uint32_t gi = 0; gi < n_groups; ++gi) run_group(ctx, gi);
    } else {
      ctx.remaining.store(ctx.groups.size(), std::memory_order_relaxed);
      for (std::uint32_t gi = 0; gi < n_groups; ++gi) {
        push_task(TaskItem{&ctx, gi});
      }
      std::unique_lock<std::mutex> lock(ctx.mutex);
      ctx.cv.wait(lock, [&ctx] { return ctx.done; });
    }

    // Merge-on-read: workers wrote one slot per group; fan the slots back
    // out to submission indices here, on the submitting thread, so cache
    // inserts, duplicate accounting, and the sink/journal pass below all
    // happen in submission order no matter how the pool scheduled the
    // groups. This is what keeps N workers bit-identical to serial.
    // Batches overwhelmingly run one backend, so memoize the per-backend
    // evals counter: the steady state is a relaxed add per group instead
    // of a mutex plus a string-keyed map lookup.
    const std::string* evals_backend = nullptr;
    obs::MetricsRegistry::Counter evals;
    for (std::uint32_t gi = 0; gi < n_groups; ++gi) {
      const BatchCtx::Group& g = ctx.groups[gi];
      SimJobOutcome& out = ctx.slots[gi].out;
      if (out.ok()) {
        if (evals_backend == nullptr || *evals_backend != g.job->backend) {
          evals = backend_evals(g.job->backend);
          evals_backend = &g.job->backend;
        }
        evals.inc();
        if (cache_enabled_) {
          const std::lock_guard<std::mutex> lock(cache_mutex_);
          cache_.emplace(g.fp, out.result);
        }
        // Duplicates within the batch were served by the one execution.
        for (const std::size_t k : g.dups) {
          outcomes[k] = out;
          outcomes[k].from_cache = true;
          cache_hits_.fetch_add(1, std::memory_order_relaxed);
          obs_.cache_hits.inc();
        }
      } else {
        for (const std::size_t k : g.dups) {
          outcomes[k] = out;
        }
      }
      outcomes[g.first] = std::move(out);
    }
  }

  // Journal + sink bookkeeping happens on the submitting thread, in
  // submission order, so structured output is deterministic regardless of
  // worker scheduling. The journal line is written after the sink record
  // flushed: a crash between the two re-runs the point (harmless) rather
  // than losing its data row (not).
  {
    const std::lock_guard<std::mutex> lock(sink_mutex_);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const SimJobOutcome& out = outcomes[i];
      if (!out.ok()) continue;
      if (sink_ != nullptr) {
        sink_->write(ResultRecord::make(jobs[i], *out.result, out.from_cache));
      }
      if (journal_ != nullptr && !out.skipped) {
        journal_->mark_done(out.fingerprint, jobs[i].tag,
                            out.result->duration_ms);
      }
    }
  }
  return outcomes;
}

std::size_t ExperimentEngine::cache_size() const {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_.size();
}

void ExperimentEngine::clear_cache() {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  cache_.clear();
}

void ExperimentEngine::set_sink(ResultSink* sink) {
  const std::lock_guard<std::mutex> lock(sink_mutex_);
  sink_ = sink;
}

ExperimentEngine& ExperimentEngine::shared() {
  // Sink and journal are separate statics constructed first so they
  // outlive the engine's destructor (which joins the workers).
  static const std::unique_ptr<ResultSink> sink = []() -> std::unique_ptr<ResultSink> {
    const char* path = std::getenv("LPM_RESULTS");
    if (path == nullptr) return nullptr;
    try {
      return ResultSink::open(path);
    } catch (const std::exception& e) {
      // A bad LPM_RESULTS path shouldn't kill the run — warn and go on.
      util::log_error() << "LPM_RESULTS disabled: " << e.what();
      return nullptr;
    }
  }();
  static const std::unique_ptr<SweepJournal> journal =
      []() -> std::unique_ptr<SweepJournal> {
    const char* path = std::getenv("LPM_JOURNAL");
    if (path == nullptr) return nullptr;
    try {
      return SweepJournal::open(path);
    } catch (const std::exception& e) {
      util::log_error() << "LPM_JOURNAL disabled: " << e.what();
      return nullptr;
    }
  }();
  static ExperimentEngine engine{[] {
    auto builder =
        Options::builder()
            .sink(sink.get())
            .journal(journal.get())
            .max_retries(
                static_cast<unsigned>(env_u64_or("LPM_MAX_RETRIES", 0)))
            .retry_backoff_base_ms(env_u64_or("LPM_RETRY_BACKOFF_MS", 10))
            .job_timeout_ms(env_u64_or("LPM_JOB_TIMEOUT_MS", 0))
            .fault_plan(FaultPlan::from_env());
    if (const char* env = std::getenv("LPM_AFFINITY")) {
      if (const auto policy = parse_affinity_policy(env)) {
        builder.affinity(*policy);
      } else {
        util::log_warn() << "ignoring invalid LPM_AFFINITY='" << env
                         << "' (want none|compact|spread)";
      }
    }
    const std::uint64_t capacity = env_u64_or("LPM_QUEUE_CAPACITY", 1024);
    if (capacity >= 1 && (capacity & (capacity - 1)) == 0) {
      builder.queue_capacity(static_cast<std::size_t>(capacity));
    } else {
      util::log_warn() << "ignoring LPM_QUEUE_CAPACITY=" << capacity
                       << " (must be a power of two >= 1)";
    }
    return builder.build();
  }()};
  return engine;
}

}  // namespace lpm::exp
