#include "exp/experiment_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "exp/journal.hpp"
#include "exp/result_sink.hpp"
#include "obs/trace.hpp"
#include "trace/synthetic.hpp"
#include "util/fingerprint.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace lpm::exp {

namespace {

unsigned resolve_threads(unsigned requested) {
  if (requested > 0) return std::min(requested, 256u);
  if (const char* env = std::getenv("LPM_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<unsigned>(std::min<long>(v, 256));
    util::log_warn() << "ignoring invalid LPM_THREADS='" << env << "'";
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::uint64_t env_u64_or(const char* name, std::uint64_t dflt) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return dflt;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == nullptr || *end != '\0') {
    util::log_warn() << "ignoring invalid " << name << "='" << env << "'";
    return dflt;
  }
  return v;
}

/// Error classification for arbitrary exceptions escaping a job.
util::ErrorCode code_of(const std::exception& e) {
  if (const auto* lpm = dynamic_cast<const util::LpmError*>(&e)) {
    return lpm->code() == util::ErrorCode::kNone ? util::ErrorCode::kGeneric
                                                 : lpm->code();
  }
  return util::ErrorCode::kSim;
}

bool retryable(util::ErrorCode code) {
  // Config errors are deterministic rejections of the inputs: the retry
  // would fail identically, so don't burn attempts on it.
  return code != util::ErrorCode::kConfig;
}

/// Process-wide backend-executor registry. Executors are identified by
/// name only, so a job's fingerprint stays stable across processes while
/// the dispatch stays pluggable (src/model registers "rdh" / "fa").
struct BackendRegistry {
  std::mutex mutex;
  std::unordered_map<std::string, BackendExecutor> executors;

  static BackendRegistry& instance() {
    static BackendRegistry registry;
    return registry;
  }

  std::optional<BackendExecutor> find(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mutex);
    const auto it = executors.find(name);
    if (it == executors.end()) return std::nullopt;
    return it->second;
  }
};

}  // namespace

void ExperimentEngine::register_backend_executor(const std::string& name,
                                                 BackendExecutor executor) {
  util::require(!name.empty(), "register_backend_executor: empty name");
  util::require(name != kCycleBackend,
                "register_backend_executor: the cycle backend is built in");
  util::require(executor != nullptr,
                "register_backend_executor: null executor for '" + name + "'");
  auto& registry = BackendRegistry::instance();
  const std::lock_guard<std::mutex> lock(registry.mutex);
  registry.executors[name] = std::move(executor);
}

bool ExperimentEngine::has_backend_executor(const std::string& name) {
  if (name == kCycleBackend) return true;
  auto& registry = BackendRegistry::instance();
  const std::lock_guard<std::mutex> lock(registry.mutex);
  return registry.executors.contains(name);
}

const SimResultPtr& SimJobOutcome::value() const {
  if (result != nullptr) return result;
  if (skipped) {
    util::throw_error(util::ErrorCode::kGeneric,
                      "SimJobOutcome: point " + util::fingerprint_hex(fingerprint) +
                          " was journal-skipped (no in-process result)");
  }
  util::throw_error(error == util::ErrorCode::kNone ? util::ErrorCode::kGeneric
                                                    : error,
                    error_message);
}

SimJob SimJob::solo(sim::MachineConfig machine, trace::WorkloadProfile workload,
                    bool calibrate, std::string tag) {
  SimJob job;
  job.machine = std::move(machine);
  job.machine.num_cores = 1;
  if (tag.empty()) tag = workload.name;
  job.workloads.push_back(std::move(workload));
  job.calibrate = calibrate;
  job.tag = std::move(tag);
  return job;
}

void SimJob::validate() const {
  machine.validate();
  util::require(workloads.size() == machine.num_cores,
                "SimJob: need exactly one workload per core (" +
                    std::to_string(workloads.size()) + " workloads for " +
                    std::to_string(machine.num_cores) + " cores)");
  for (const auto& wl : workloads) wl.validate();
  util::require(ExperimentEngine::has_backend_executor(backend),
                "SimJob: unknown backend '" + backend +
                    "' (no registered executor)");
}

std::uint64_t SimJob::fingerprint() const {
  util::Fingerprint f;
  // v2: the backend joined the key so analytic and cycle evaluations of
  // the same (machine, workloads) never alias in the memo cache.
  f.mix(std::string("SimJob/v2"));
  f.mix_u64(util::fingerprint(machine));
  f.mix(workloads.size());
  for (const auto& wl : workloads) f.mix_u64(util::fingerprint(wl));
  f.mix(calibrate);
  f.mix(backend);
  return f.value();
}

ExperimentEngine::ExperimentEngine() : ExperimentEngine(Options{}) {}

ExperimentEngine::ExperimentEngine(Options opts)
    : threads_(resolve_threads(opts.threads)),
      cache_enabled_(opts.cache_enabled),
      max_retries_(opts.max_retries),
      retry_backoff_base_ms_(opts.retry_backoff_base_ms),
      backoff_seed_(opts.backoff_seed),
      job_timeout_ms_(opts.job_timeout_ms),
      default_policy_(opts.policy),
      fault_plan_(std::move(opts.fault_plan)),
      journal_(opts.journal),
      sink_(opts.sink) {
  // Resolve registry handles (and thereby touch the global registry +
  // trace session) before any worker exists: the $LPM_METRICS/$LPM_TRACE
  // exit hooks are then registered ahead of this engine's static-teardown
  // slot, so a shared() engine joins its pool before the final snapshot
  // and the trace-file close.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::TraceSession::global();
  obs_ = Instruments{
      reg.counter("exp.jobs.submitted"),
      reg.counter("exp.jobs.executed"),
      reg.counter("exp.jobs.cache_hits"),
      reg.counter("exp.jobs.failed"),
      reg.counter("exp.jobs.retries"),
      reg.counter("exp.jobs.timeouts"),
      reg.counter("exp.jobs.faults_injected"),
      reg.counter("exp.jobs.journal_skips"),
      reg.histogram("exp.job.queue_wait_ms",
                    obs::MetricsRegistry::latency_ms_bounds()),
      reg.histogram("exp.job.run_ms",
                    obs::MetricsRegistry::latency_ms_bounds()),
      reg.histogram("exp.batch.size",
                    {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}),
  };
  // threads_ == 1 means strictly serial: jobs run inline on the submitting
  // thread and no pool exists (the reference configuration for the
  // determinism tests).
  if (threads_ > 1) {
    workers_.reserve(threads_);
    for (unsigned i = 0; i < threads_; ++i) {
      workers_.emplace_back([this, i] { worker_loop(static_cast<int>(i)); });
    }
  }
  if (job_timeout_ms_ > 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

ExperimentEngine::~ExperimentEngine() {
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    shutting_down_ = true;
  }
  queue_cv_.notify_all();
  for (auto& w : workers_) w.join();
  if (watchdog_.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(watchdog_mutex_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.notify_all();
    watchdog_.join();
  }
}

void ExperimentEngine::worker_loop(int worker_id) {
  util::set_thread_worker_id(worker_id);
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // only reachable when shutting down
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ExperimentEngine::enqueue(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.push_back(std::move(task));
  }
  queue_cv_.notify_one();
}

// --- watchdog -------------------------------------------------------------

std::uint64_t ExperimentEngine::watchdog_register(
    std::shared_ptr<sim::RunGuard> guard) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(job_timeout_ms_);
  std::uint64_t ticket = 0;
  {
    const std::lock_guard<std::mutex> lock(watchdog_mutex_);
    ticket = ++watchdog_next_ticket_;
    watchdog_entries_.emplace(ticket, WatchdogEntry{deadline, std::move(guard)});
  }
  watchdog_cv_.notify_all();  // new, possibly nearer deadline
  return ticket;
}

void ExperimentEngine::watchdog_unregister(std::uint64_t ticket) {
  const std::lock_guard<std::mutex> lock(watchdog_mutex_);
  watchdog_entries_.erase(ticket);
}

void ExperimentEngine::watchdog_loop() {
  util::set_thread_worker_id(-1);
  std::unique_lock<std::mutex> lock(watchdog_mutex_);
  while (!watchdog_stop_) {
    auto wake = std::chrono::steady_clock::now() + std::chrono::milliseconds(50);
    for (const auto& [ticket, entry] : watchdog_entries_) {
      wake = std::min(wake, entry.deadline);
    }
    watchdog_cv_.wait_until(lock, wake);
    if (watchdog_stop_) break;
    const auto now = std::chrono::steady_clock::now();
    for (auto it = watchdog_entries_.begin(); it != watchdog_entries_.end();) {
      if (it->second.deadline <= now) {
        // Mark only: the job notices at its next guard poll and unwinds
        // through TimeoutError on its own stack.
        it->second.guard->cancel.store(true, std::memory_order_relaxed);
        it = watchdog_entries_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

// --- execution ------------------------------------------------------------

SimJobResult ExperimentEngine::execute(const SimJob& job,
                                       const sim::RunGuard* guard,
                                       std::optional<FaultKind> fault) {
  const auto start = std::chrono::steady_clock::now();
  obs::ScopedSpan span(obs::TraceSession::global(), "exp.execute", "exp");
  span.arg("cores", static_cast<double>(job.machine.num_cores));
  if (fault.has_value()) {
    obs_.faults_injected.inc();
    switch (*fault) {
      case FaultKind::kThrow:
        throw util::SimError("injected fault: throw (job '" + job.tag + "')");
      case FaultKind::kIo:
        throw util::IoError("injected fault: io (job '" + job.tag + "')");
      case FaultKind::kHang:
        // A "hang" blocks exactly like a wedged simulation would, but
        // cooperatively: it waits for the watchdog to flip the cancel
        // flag, then unwinds the way a real over-budget run does.
        if (guard == nullptr) {
          throw util::TimeoutError("injected fault: hang with no watchdog "
                                   "configured (job '" + job.tag + "')");
        }
        while (!guard->cancel.load(std::memory_order_relaxed)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        throw util::TimeoutError("injected fault: hang cancelled by watchdog "
                                 "(job '" + job.tag + "')");
    }
  }
  SimJobResult out;
  if (job.backend == kCycleBackend) {
    std::vector<trace::TraceSourcePtr> traces;
    traces.reserve(job.workloads.size());
    for (const auto& wl : job.workloads) {
      traces.push_back(std::make_unique<trace::SyntheticTrace>(wl));
    }
    sim::System system(job.machine, std::move(traces));
    out.run = system.run(guard);
    if (job.calibrate) {
      out.calib.reserve(job.workloads.size());
      for (const auto& wl : job.workloads) {
        trace::SyntheticTrace calib_trace(wl);
        out.calib.push_back(
            sim::measure_cpi_exe(job.machine, calib_trace, guard));
      }
    }
  } else {
    const auto executor = BackendRegistry::instance().find(job.backend);
    // validate() already vetted the name; an executor can still vanish if
    // a test re-registers, so keep the typed error rather than a crash.
    if (!executor.has_value()) {
      util::throw_error(util::ErrorCode::kConfig,
                        "no executor registered for backend '" + job.backend +
                            "' (job '" + job.tag + "')");
    }
    out = (*executor)(job, guard);
  }
  out.backend = job.backend;
  obs::MetricsRegistry::global()
      .counter("model.backend.evals." + job.backend)
      .inc();
  simulations_executed_.fetch_add(1, std::memory_order_relaxed);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const auto elapsed_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
  busy_nanos_.fetch_add(elapsed_ns, std::memory_order_relaxed);
  out.duration_ms = 1e-6 * static_cast<double>(elapsed_ns);
  obs_.jobs_executed.inc();
  obs_.run_ms.observe(1e-6 * static_cast<double>(elapsed_ns));
  return out;
}

std::uint64_t ExperimentEngine::retry_backoff_ms(std::uint64_t seed,
                                                 std::uint64_t fingerprint,
                                                 unsigned attempt,
                                                 std::uint64_t base_ms) {
  if (base_ms == 0) return 0;
  const unsigned shift = std::min(attempt >= 1 ? attempt - 1 : 0u, 16u);
  // Saturate instead of shifting blindly: a large base (or, before the
  // exponent clamp existed, a large attempt count) would wrap the shift and
  // come back as a near-zero delay — turning backoff into a retry storm.
  // Anything that would exceed the ceiling pins to kMaxRetryBackoffMs.
  std::uint64_t scaled = kMaxRetryBackoffMs;
  if (base_ms <= (kMaxRetryBackoffMs >> shift)) scaled = base_ms << shift;
  util::Rng rng(seed ^ fingerprint ^ (0x9e37u + attempt));
  const std::uint64_t jitter =
      rng.next_below(std::min(base_ms, kMaxRetryBackoffMs) + 1);
  return std::min(kMaxRetryBackoffMs, scaled + jitter);
}

SimJobOutcome ExperimentEngine::execute_with_retry(const SimJob& job,
                                                   std::uint64_t fingerprint,
                                                   std::uint64_t fault_index) {
  SimJobOutcome out;
  out.fingerprint = fingerprint;
  for (unsigned attempt = 1;; ++attempt) {
    out.attempts = attempt;
    std::shared_ptr<sim::RunGuard> guard;
    std::uint64_t ticket = 0;
    if (job_timeout_ms_ > 0) {
      guard = std::make_shared<sim::RunGuard>();
      ticket = watchdog_register(guard);
    }
    try {
      // Faults fire on the first attempt only: a retried job re-executes
      // clean, which is exactly the transient-failure scenario retries
      // exist for (persistent failures are modelled by max_retries = 0).
      const std::optional<FaultKind> fault =
          attempt == 1 ? fault_plan_.at(fault_index) : std::nullopt;
      auto result = std::make_shared<SimJobResult>(execute(job, guard.get(), fault));
      result->fingerprint = fingerprint;
      if (guard != nullptr) watchdog_unregister(ticket);
      out.result = std::move(result);
      out.error = util::ErrorCode::kNone;
      out.error_message.clear();
      return out;
    } catch (const std::exception& e) {
      if (guard != nullptr) watchdog_unregister(ticket);
      out.error = code_of(e);
      out.error_message = e.what();
      if (out.error == util::ErrorCode::kTimeout) obs_.timeouts.inc();
    } catch (...) {
      // Deliberately the only catch-all left in the engine: it converts an
      // unknown thrown type into a typed outcome instead of losing it.
      if (guard != nullptr) watchdog_unregister(ticket);
      out.error = util::ErrorCode::kSim;
      out.error_message = "unknown exception type escaped the job";
    }
    if (!retryable(out.error) || attempt > max_retries_) {
      jobs_failed_.fetch_add(1, std::memory_order_relaxed);
      obs_.jobs_failed.inc();
      return out;
    }
    retries_performed_.fetch_add(1, std::memory_order_relaxed);
    obs_.retries.inc();
    if (obs::TraceSession* session = obs::TraceSession::global()) {
      session->instant_event("exp.retry", "exp", session->now_us(),
                             {{"attempt", static_cast<double>(attempt)}});
    }
    const std::uint64_t delay =
        retry_backoff_ms(backoff_seed_, fingerprint, attempt, retry_backoff_base_ms_);
    util::log_warn() << "job '" << job.tag << "' attempt " << attempt
                     << " failed (" << util::error_code_name(out.error)
                     << "): " << out.error_message << " — retrying in " << delay
                     << "ms";
    if (delay > 0) std::this_thread::sleep_for(std::chrono::milliseconds(delay));
  }
}

// --- batch orchestration --------------------------------------------------

SimResultPtr ExperimentEngine::run(const SimJob& job) {
  return run_batch({job}).front();
}

std::vector<SimResultPtr> ExperimentEngine::run_batch(
    const std::vector<SimJob>& jobs) {
  // The journal is never consulted here: this API promises a result object
  // per job, which a journal skip cannot provide.
  auto outcomes = run_batch_impl(jobs, FailurePolicy::kFailFast,
                                 /*consult_journal=*/false);
  std::vector<SimResultPtr> results;
  results.reserve(outcomes.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (!outcomes[i].ok() &&
        outcomes[i].error != util::ErrorCode::kCancelled) {
      util::throw_error(outcomes[i].error,
                        "job '" + jobs[i].tag + "' (fingerprint " +
                            util::fingerprint_hex(outcomes[i].fingerprint) +
                            ", attempts " + std::to_string(outcomes[i].attempts) +
                            "): " + outcomes[i].error_message);
    }
  }
  for (auto& outcome : outcomes) results.push_back(std::move(outcome.result));
  return results;
}

std::vector<SimJobOutcome> ExperimentEngine::run_batch_outcomes(
    const std::vector<SimJob>& jobs) {
  return run_batch_impl(jobs, default_policy_, journal_ != nullptr);
}

std::vector<SimJobOutcome> ExperimentEngine::run_batch_outcomes(
    const std::vector<SimJob>& jobs, BatchOptions batch) {
  return run_batch_impl(jobs, batch.policy, batch.consult_journal);
}

std::vector<SimJobOutcome> ExperimentEngine::run_batch_impl(
    const std::vector<SimJob>& jobs, FailurePolicy policy,
    bool consult_journal) {
  std::vector<SimJobOutcome> outcomes(jobs.size());
  if (jobs.empty()) return outcomes;
  obs::ScopedSpan batch_span(obs::TraceSession::global(), "exp.run_batch",
                             "exp");
  batch_span.arg("jobs", static_cast<double>(jobs.size()));
  obs_.jobs_submitted.add(jobs.size());
  obs_.batch_size.observe(static_cast<double>(jobs.size()));

  // Resolve fingerprints, validation failures, cache hits and journal
  // skips on the submitting thread; group the remainder so each distinct
  // point simulates exactly once. Groups keep submission order, which also
  // fixes the fault plan's executed-point numbering independently of the
  // worker pool.
  struct Group {
    std::uint64_t fp = 0;
    const SimJob* job = nullptr;
    std::vector<std::size_t> indices;
    std::uint64_t fault_index = 0;
  };
  std::vector<Group> groups;
  std::unordered_map<std::uint64_t, std::size_t> group_of;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    try {
      jobs[i].validate();
    } catch (const util::LpmError& e) {
      outcomes[i].error = util::ErrorCode::kConfig;
      outcomes[i].error_message = e.what();
      continue;
    }
    const std::uint64_t fp = jobs[i].fingerprint();
    outcomes[i].fingerprint = fp;
    if (const auto it = group_of.find(fp); it != group_of.end()) {
      groups[it->second].indices.push_back(i);
      continue;
    }
    if (cache_enabled_) {
      const std::lock_guard<std::mutex> lock(cache_mutex_);
      if (const auto it = cache_.find(fp); it != cache_.end()) {
        outcomes[i].result = it->second;
        outcomes[i].from_cache = true;
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        obs_.cache_hits.inc();
        continue;
      }
    }
    if (consult_journal && journal_ != nullptr && journal_->completed(fp)) {
      outcomes[i].skipped = true;
      journal_skips_.fetch_add(1, std::memory_order_relaxed);
      obs_.journal_skips.inc();
      continue;
    }
    group_of.emplace(fp, groups.size());
    groups.push_back(Group{fp, &jobs[i], {i}, 0});
  }
  for (Group& g : groups) {
    g.fault_index = fault_cursor_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  if (!groups.empty()) {
    struct BatchState {
      std::mutex mutex;
      std::condition_variable cv;
      std::size_t remaining = 0;
      std::atomic<bool> abort{false};
    } state;
    state.remaining = groups.size();

    for (Group& group : groups) {
      const Group* g = &group;
      const auto enqueued_at = std::chrono::steady_clock::now();
      auto task = [this, g, policy, &outcomes, &state, enqueued_at] {
        obs_.queue_wait_ms.observe(
            1e-6 * static_cast<double>(
                       std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - enqueued_at)
                           .count()));
        SimJobOutcome out;
        // Fail-fast: jobs not yet started when an earlier one failed are
        // reported as cancelled, never silently dropped.
        if (policy == FailurePolicy::kFailFast &&
            state.abort.load(std::memory_order_acquire)) {
          out.fingerprint = g->fp;
          out.error = util::ErrorCode::kCancelled;
          out.error_message =
              "not started: an earlier job in the fail-fast batch failed";
        } else {
          out = execute_with_retry(*g->job, g->fp, g->fault_index);
        }
        if (out.ok()) {
          if (cache_enabled_) {
            const std::lock_guard<std::mutex> lock(cache_mutex_);
            cache_.emplace(g->fp, out.result);
          }
        } else if (policy == FailurePolicy::kFailFast &&
                   out.error != util::ErrorCode::kCancelled) {
          state.abort.store(true, std::memory_order_release);
        }
        for (const std::size_t idx : g->indices) outcomes[idx] = out;
        // Notify while holding the mutex: the submitting thread owns
        // BatchState on its stack and destroys it as soon as it observes
        // remaining == 0, so an unlocked notify could signal a dead cv.
        {
          const std::lock_guard<std::mutex> lock(state.mutex);
          --state.remaining;
          state.cv.notify_one();
        }
      };
      if (threads_ == 1) {
        task();
      } else {
        enqueue(std::move(task));
      }
    }
    {
      std::unique_lock<std::mutex> lock(state.mutex);
      state.cv.wait(lock, [&state] { return state.remaining == 0; });
    }
    // Duplicates within the batch were served by the first execution.
    for (const Group& g : groups) {
      if (!outcomes[g.indices.front()].ok()) continue;
      for (std::size_t k = 1; k < g.indices.size(); ++k) {
        outcomes[g.indices[k]].from_cache = true;
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        obs_.cache_hits.inc();
      }
    }
  }

  // Journal + sink bookkeeping happens on the submitting thread, in
  // submission order, so structured output is deterministic regardless of
  // worker scheduling. The journal line is written after the sink record
  // flushed: a crash between the two re-runs the point (harmless) rather
  // than losing its data row (not).
  {
    const std::lock_guard<std::mutex> lock(sink_mutex_);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const SimJobOutcome& out = outcomes[i];
      if (!out.ok()) continue;
      if (sink_ != nullptr) {
        sink_->write(ResultRecord::make(jobs[i], *out.result, out.from_cache));
      }
      if (journal_ != nullptr && !out.skipped) {
        journal_->mark_done(out.fingerprint, jobs[i].tag,
                            out.result->duration_ms);
      }
    }
  }
  return outcomes;
}

std::size_t ExperimentEngine::cache_size() const {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_.size();
}

void ExperimentEngine::clear_cache() {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  cache_.clear();
}

void ExperimentEngine::set_sink(ResultSink* sink) {
  const std::lock_guard<std::mutex> lock(sink_mutex_);
  sink_ = sink;
}

ExperimentEngine& ExperimentEngine::shared() {
  // Sink and journal are separate statics constructed first so they
  // outlive the engine's destructor (which joins the workers).
  static const std::unique_ptr<ResultSink> sink = []() -> std::unique_ptr<ResultSink> {
    const char* path = std::getenv("LPM_RESULTS");
    if (path == nullptr) return nullptr;
    try {
      return ResultSink::open(path);
    } catch (const std::exception& e) {
      // A bad LPM_RESULTS path shouldn't kill the run — warn and go on.
      util::log_error() << "LPM_RESULTS disabled: " << e.what();
      return nullptr;
    }
  }();
  static const std::unique_ptr<SweepJournal> journal =
      []() -> std::unique_ptr<SweepJournal> {
    const char* path = std::getenv("LPM_JOURNAL");
    if (path == nullptr) return nullptr;
    try {
      return SweepJournal::open(path);
    } catch (const std::exception& e) {
      util::log_error() << "LPM_JOURNAL disabled: " << e.what();
      return nullptr;
    }
  }();
  static ExperimentEngine engine{[] {
    Options opts;
    opts.sink = sink.get();
    opts.journal = journal.get();
    opts.max_retries =
        static_cast<unsigned>(env_u64_or("LPM_MAX_RETRIES", 0));
    opts.retry_backoff_base_ms = env_u64_or("LPM_RETRY_BACKOFF_MS", 10);
    opts.job_timeout_ms = env_u64_or("LPM_JOB_TIMEOUT_MS", 0);
    opts.fault_plan = FaultPlan::from_env();
    return opts;
  }()};
  return engine;
}

}  // namespace lpm::exp
