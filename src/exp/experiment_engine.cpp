#include "exp/experiment_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "exp/result_sink.hpp"
#include "trace/synthetic.hpp"
#include "util/error.hpp"
#include "util/fingerprint.hpp"
#include "util/log.hpp"

namespace lpm::exp {

namespace {

unsigned resolve_threads(unsigned requested) {
  if (requested > 0) return std::min(requested, 256u);
  if (const char* env = std::getenv("LPM_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<unsigned>(std::min<long>(v, 256));
    util::log_warn() << "ignoring invalid LPM_THREADS='" << env << "'";
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

SimJob SimJob::solo(sim::MachineConfig machine, trace::WorkloadProfile workload,
                    bool calibrate, std::string tag) {
  SimJob job;
  job.machine = std::move(machine);
  job.machine.num_cores = 1;
  if (tag.empty()) tag = workload.name;
  job.workloads.push_back(std::move(workload));
  job.calibrate = calibrate;
  job.tag = std::move(tag);
  return job;
}

void SimJob::validate() const {
  machine.validate();
  util::require(workloads.size() == machine.num_cores,
                "SimJob: need exactly one workload per core (" +
                    std::to_string(workloads.size()) + " workloads for " +
                    std::to_string(machine.num_cores) + " cores)");
  for (const auto& wl : workloads) wl.validate();
}

std::uint64_t SimJob::fingerprint() const {
  util::Fingerprint f;
  f.mix(std::string("SimJob/v1"));
  f.mix_u64(util::fingerprint(machine));
  f.mix(workloads.size());
  for (const auto& wl : workloads) f.mix_u64(util::fingerprint(wl));
  f.mix(calibrate);
  return f.value();
}

ExperimentEngine::ExperimentEngine() : ExperimentEngine(Options{}) {}

ExperimentEngine::ExperimentEngine(Options opts)
    : threads_(resolve_threads(opts.threads)),
      cache_enabled_(opts.cache_enabled),
      sink_(opts.sink) {
  // threads_ == 1 means strictly serial: jobs run inline on the submitting
  // thread and no pool exists (the reference configuration for the
  // determinism tests).
  if (threads_ > 1) {
    workers_.reserve(threads_);
    for (unsigned i = 0; i < threads_; ++i) {
      workers_.emplace_back([this, i] { worker_loop(static_cast<int>(i)); });
    }
  }
}

ExperimentEngine::~ExperimentEngine() {
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    shutting_down_ = true;
  }
  queue_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ExperimentEngine::worker_loop(int worker_id) {
  util::set_thread_worker_id(worker_id);
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // only reachable when shutting down
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ExperimentEngine::enqueue(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.push_back(std::move(task));
  }
  queue_cv_.notify_one();
}

SimJobResult ExperimentEngine::execute(const SimJob& job) {
  const auto start = std::chrono::steady_clock::now();
  SimJobResult out;
  std::vector<trace::TraceSourcePtr> traces;
  traces.reserve(job.workloads.size());
  for (const auto& wl : job.workloads) {
    traces.push_back(std::make_unique<trace::SyntheticTrace>(wl));
  }
  sim::System system(job.machine, std::move(traces));
  out.run = system.run();
  if (job.calibrate) {
    out.calib.reserve(job.workloads.size());
    for (const auto& wl : job.workloads) {
      trace::SyntheticTrace calib_trace(wl);
      out.calib.push_back(sim::measure_cpi_exe(job.machine, calib_trace));
    }
  }
  simulations_executed_.fetch_add(1, std::memory_order_relaxed);
  busy_nanos_.fetch_add(std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - start)
                            .count(),
                        std::memory_order_relaxed);
  return out;
}

SimResultPtr ExperimentEngine::run(const SimJob& job) {
  return run_batch({job}).front();
}

std::vector<SimResultPtr> ExperimentEngine::run_batch(
    const std::vector<SimJob>& jobs) {
  std::vector<SimResultPtr> results(jobs.size());
  if (jobs.empty()) return results;

  // Resolve fingerprints and pre-existing cache hits on the submitting
  // thread; group the rest so each distinct point simulates exactly once.
  std::vector<std::uint64_t> fps(jobs.size());
  std::vector<bool> from_cache(jobs.size(), false);
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> pending;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].validate();
    fps[i] = jobs[i].fingerprint();
    if (cache_enabled_) {
      const std::lock_guard<std::mutex> lock(cache_mutex_);
      if (const auto it = cache_.find(fps[i]); it != cache_.end()) {
        results[i] = it->second;
        from_cache[i] = true;
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
    }
    pending[fps[i]].push_back(i);
  }

  if (!pending.empty()) {
    struct BatchState {
      std::mutex mutex;
      std::condition_variable cv;
      std::size_t remaining = 0;
      std::exception_ptr error;
    } state;
    state.remaining = pending.size();

    for (auto& [fp, indices] : pending) {
      const SimJob* job = &jobs[indices.front()];
      const std::vector<std::size_t>* idxs = &indices;
      auto task = [this, job, fp = fp, idxs, &results, &state] {
        try {
          auto result = std::make_shared<SimJobResult>(execute(*job));
          result->fingerprint = fp;
          SimResultPtr ptr = std::move(result);
          if (cache_enabled_) {
            const std::lock_guard<std::mutex> lock(cache_mutex_);
            cache_.emplace(fp, ptr);
          }
          for (const std::size_t idx : *idxs) results[idx] = ptr;
        } catch (...) {
          const std::lock_guard<std::mutex> lock(state.mutex);
          if (!state.error) state.error = std::current_exception();
        }
        // Notify while holding the mutex: the submitting thread owns
        // BatchState on its stack and destroys it as soon as it observes
        // remaining == 0, so an unlocked notify could signal a dead cv.
        {
          const std::lock_guard<std::mutex> lock(state.mutex);
          --state.remaining;
          state.cv.notify_one();
        }
      };
      if (threads_ == 1) {
        task();
      } else {
        enqueue(std::move(task));
      }
    }
    {
      std::unique_lock<std::mutex> lock(state.mutex);
      state.cv.wait(lock, [&state] { return state.remaining == 0; });
      if (state.error) std::rethrow_exception(state.error);
    }
    // Duplicates within the batch were served by the first execution.
    for (const auto& [fp, indices] : pending) {
      for (std::size_t k = 1; k < indices.size(); ++k) {
        from_cache[indices[k]] = true;
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  // Sink records go out on the submitting thread, in submission order, so
  // structured output is deterministic regardless of worker scheduling.
  {
    const std::lock_guard<std::mutex> lock(sink_mutex_);
    if (sink_ != nullptr) {
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        sink_->write(ResultRecord::make(jobs[i], *results[i], from_cache[i]));
      }
    }
  }
  return results;
}

std::size_t ExperimentEngine::cache_size() const {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_.size();
}

void ExperimentEngine::clear_cache() {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  cache_.clear();
}

void ExperimentEngine::set_sink(ResultSink* sink) {
  const std::lock_guard<std::mutex> lock(sink_mutex_);
  sink_ = sink;
}

ExperimentEngine& ExperimentEngine::shared() {
  // The sink is a separate static constructed first so it outlives the
  // engine's destructor (which joins the workers).
  static const std::unique_ptr<ResultSink> sink = []() -> std::unique_ptr<ResultSink> {
    const char* path = std::getenv("LPM_RESULTS");
    if (path == nullptr) return nullptr;
    try {
      return ResultSink::open(path);
    } catch (const std::exception& e) {
      // A bad LPM_RESULTS path shouldn't kill the run — warn and go on.
      util::log_error() << "LPM_RESULTS disabled: " << e.what();
      return nullptr;
    }
  }();
  static ExperimentEngine engine{[] {
    Options opts;
    opts.sink = sink.get();
    return opts;
  }()};
  return engine;
}

}  // namespace lpm::exp
