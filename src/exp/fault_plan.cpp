#include "exp/fault_plan.hpp"

#include <cstdlib>
#include <sstream>

#include "util/error.hpp"
#include "util/log.hpp"

namespace lpm::exp {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kThrow: return "throw";
    case FaultKind::kHang: return "hang";
    case FaultKind::kIo: return "io";
  }
  return "?";
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::istringstream in(spec);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (token.empty()) continue;
    const auto at = token.find('@');
    util::require(at != std::string::npos && at > 0 && at + 1 < token.size(),
                  "FaultPlan: token '" + token + "' is not kind@index");
    const std::string kind_name = token.substr(0, at);
    FaultKind kind;
    if (kind_name == "throw") {
      kind = FaultKind::kThrow;
    } else if (kind_name == "hang") {
      kind = FaultKind::kHang;
    } else if (kind_name == "io") {
      kind = FaultKind::kIo;
    } else {
      throw util::ConfigError("FaultPlan: unknown fault kind '" + kind_name +
                              "' (expected throw | hang | io)");
    }
    const std::string index_text = token.substr(at + 1);
    char* end = nullptr;
    const unsigned long long index = std::strtoull(index_text.c_str(), &end, 10);
    util::require(end != nullptr && *end == '\0' && index >= 1,
                  "FaultPlan: bad index '" + index_text + "' (need integer >= 1)");
    util::require(!plan.points.contains(index),
                  "FaultPlan: duplicate index " + index_text);
    plan.points.emplace(index, kind);
  }
  return plan;
}

FaultPlan FaultPlan::from_env() {
  const char* spec = std::getenv("LPM_FAULT_SPEC");
  if (spec == nullptr || *spec == '\0') return {};
  try {
    FaultPlan plan = parse(spec);
    util::log_warn() << "fault injection active: LPM_FAULT_SPEC="
                     << plan.to_string();
    return plan;
  } catch (const util::LpmError& e) {
    util::log_error() << "ignoring invalid LPM_FAULT_SPEC: " << e.what();
    return {};
  }
}

std::optional<FaultKind> FaultPlan::at(std::uint64_t index) const {
  const auto it = points.find(index);
  if (it == points.end()) return std::nullopt;
  return it->second;
}

std::string FaultPlan::to_string() const {
  std::string out;
  for (const auto& [index, kind] : points) {
    if (!out.empty()) out += ',';
    out += exp::to_string(kind);
    out += '@';
    out += std::to_string(index);
  }
  return out;
}

}  // namespace lpm::exp
