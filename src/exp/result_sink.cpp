#include "exp/result_sink.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "exp/experiment_engine.hpp"
#include "exp/journal.hpp"
#include "util/error.hpp"
#include "util/fingerprint.hpp"
#include "util/flat_json.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace lpm::exp {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string csv_field(const std::string& value) {
  const bool needs_quotes =
      value.find_first_of(",\"\r\n") != std::string::npos;
  if (!needs_quotes) return value;
  std::string out;
  out.reserve(value.size() + 2);
  out += '"';
  for (const char c : value) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::vector<std::string> split_csv_record(const std::string& record) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  for (std::size_t i = 0; i < record.size(); ++i) {
    const char c = record[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < record.size() && record[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"' && field.empty()) {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else {
      field += c;
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

ResultRecord ResultRecord::make(const SimJob& job, const SimJobResult& result,
                                bool from_cache) {
  ResultRecord r;
  r.tag = job.tag;
  r.fingerprint = util::fingerprint_hex(result.fingerprint);
  r.backend = result.backend;
  r.from_cache = from_cache;
  r.completed = result.run.completed;
  r.cycles = result.run.cycles;
  r.cores = job.machine.num_cores;

  std::uint64_t l1_accesses = 0;
  std::uint64_t l1_misses = 0;
  for (const auto& core : result.run.cores) r.instructions += core.instructions;
  for (const auto& l1 : result.run.l1_cache) {
    l1_accesses += l1.accesses;
    l1_misses += l1.misses;
  }
  r.ipc = r.cycles == 0 ? 0.0
                        : static_cast<double>(r.instructions) /
                              static_cast<double>(r.cycles);
  r.mr1 = l1_accesses == 0 ? 0.0
                           : static_cast<double>(l1_misses) /
                                 static_cast<double>(l1_accesses);
  r.mr2 = result.run.mr2();
  if (!result.run.l1.empty()) r.camat1 = result.run.l1.front().camat();
  r.camat2 = result.run.l2.camat();
  if (!result.calib.empty()) r.cpi_exe = result.calib.front().cpi_exe;
  r.duration_ms = result.duration_ms;
  return r;
}

namespace {

/// One CSV *record* may span physical lines when a quoted tag embeds a
/// newline; a record is complete once its double quotes balance.
bool csv_record_complete(const std::string& record) {
  std::size_t quotes = 0;
  for (const char c : record) {
    if (c == '"') ++quotes;
  }
  return quotes % 2 == 0;
}

std::vector<ResultRecord> load_csv_records(std::ifstream& in) {
  std::vector<ResultRecord> out;
  std::string line;
  if (!std::getline(in, line)) return out;
  const std::vector<std::string> header = split_csv_record(line);
  const auto column = [&header](const std::string& name) -> std::ptrdiff_t {
    for (std::size_t i = 0; i < header.size(); ++i) {
      if (header[i] == name) return static_cast<std::ptrdiff_t>(i);
    }
    return -1;
  };
  const auto c_tag = column("tag");
  const auto c_fp = column("fingerprint");
  const auto c_backend = column("backend");
  const auto c_cache = column("from_cache");
  const auto c_done = column("completed");
  const auto c_cycles = column("cycles");
  const auto c_cores = column("cores");
  const auto c_instr = column("instructions");
  const auto c_ipc = column("ipc");
  const auto c_mr1 = column("mr1");
  const auto c_mr2 = column("mr2");
  const auto c_camat1 = column("camat1");
  const auto c_camat2 = column("camat2");
  const auto c_cpi = column("cpi_exe");
  const auto c_dur_ms = column("duration_ms");
  const auto c_dur_s = column("duration_seconds");  // legacy files

  std::string record;
  while (std::getline(in, record)) {
    std::string extra;
    while (!csv_record_complete(record) && std::getline(in, extra)) {
      record += '\n';
      record += extra;
    }
    if (record.empty()) continue;
    const std::vector<std::string> f = split_csv_record(record);
    const auto field = [&f](std::ptrdiff_t idx) -> std::string {
      if (idx < 0 || static_cast<std::size_t>(idx) >= f.size()) return "";
      return f[static_cast<std::size_t>(idx)];
    };
    const auto num = [&field](std::ptrdiff_t idx) -> double {
      const std::string s = field(idx);
      return s.empty() ? 0.0 : std::strtod(s.c_str(), nullptr);
    };
    ResultRecord r;
    r.tag = field(c_tag);
    r.fingerprint = field(c_fp);
    // Files from before multi-fidelity backends carry no backend column;
    // every row of that era was cycle-accurate.
    const std::string backend = field(c_backend);
    r.backend = backend.empty() ? "cycle" : backend;
    r.from_cache = num(c_cache) != 0.0;
    r.completed = num(c_done) != 0.0;
    r.cycles = static_cast<std::uint64_t>(num(c_cycles));
    r.cores = static_cast<std::uint32_t>(num(c_cores));
    r.instructions = static_cast<std::uint64_t>(num(c_instr));
    r.ipc = num(c_ipc);
    r.mr1 = num(c_mr1);
    r.mr2 = num(c_mr2);
    r.camat1 = num(c_camat1);
    r.camat2 = num(c_camat2);
    r.cpi_exe = num(c_cpi);
    r.duration_ms = c_dur_ms >= 0 ? num(c_dur_ms) : 1e3 * num(c_dur_s);
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<ResultRecord> load_jsonl_records(std::ifstream& in) {
  std::vector<ResultRecord> out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const util::FlatJson json = util::FlatJson::parse(line);
    ResultRecord r;
    r.tag = json.get_string("tag").value_or("");
    r.fingerprint = json.get_string("fingerprint").value_or("");
    r.backend = json.get_string("backend").value_or("cycle");
    r.from_cache = json.get_bool("from_cache").value_or(false);
    r.completed = json.get_bool("completed").value_or(false);
    r.cycles = static_cast<std::uint64_t>(json.get_number("cycles").value_or(0));
    r.cores = static_cast<std::uint32_t>(json.get_number("cores").value_or(0));
    r.instructions =
        static_cast<std::uint64_t>(json.get_number("instructions").value_or(0));
    r.ipc = json.get_number("ipc").value_or(0.0);
    r.mr1 = json.get_number("mr1").value_or(0.0);
    r.mr2 = json.get_number("mr2").value_or(0.0);
    r.camat1 = json.get_number("camat1").value_or(0.0);
    r.camat2 = json.get_number("camat2").value_or(0.0);
    r.cpi_exe = json.get_number("cpi_exe").value_or(0.0);
    if (const auto ms = json.get_number("duration_ms")) {
      r.duration_ms = *ms;
    } else {
      // Files written before the duration-unit unification.
      r.duration_ms = 1e3 * json.get_number("duration_seconds").value_or(0.0);
    }
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace

std::vector<ResultRecord> load_result_records(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    throw util::IoError("load_result_records: cannot open '" + path + "'");
  }
  const bool csv = path.size() >= 4 && path.rfind(".csv") == path.size() - 4;
  return csv ? load_csv_records(in) : load_jsonl_records(in);
}

ResultSink::ResultSink(std::ostream& out, Format format)
    : out_(&out), format_(format) {}

ResultSink::ResultSink(Format format) : out_(&owned_), format_(format) {}

std::unique_ptr<ResultSink> ResultSink::open(const std::string& path) {
  const bool csv = path.size() >= 4 && path.rfind(".csv") == path.size() - 4;
  auto sink = std::unique_ptr<ResultSink>(
      new ResultSink(csv ? Format::kCsv : Format::kJsonLines));

  // Heal a previous crash: a kill mid-append leaves at most one torn line,
  // which carries no complete record — drop it so every surviving line
  // parses. Re-runs then append clean records (header only once).
  if (std::filesystem::exists(path)) {
    const std::uintmax_t trimmed = trim_partial_last_line(path);
    if (trimmed > 0) {
      util::log_warn() << "results file '" << path << "': dropped " << trimmed
                       << " byte(s) of torn final line";
    }
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    if (!ec && size > 0) sink->header_written_ = true;
  }

  sink->owned_.open(path, std::ios::out | std::ios::app);
  if (!sink->owned_.is_open()) {
    throw util::IoError("ResultSink: cannot open '" + path + "' for writing");
  }
  return sink;
}

void ResultSink::write(const ResultRecord& r) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  if (format_ == Format::kCsv) {
    if (!header_written_) {
      os << "tag,fingerprint,backend,from_cache,completed,cycles,cores,"
            "instructions,ipc,mr1,mr2,camat1,camat2,cpi_exe,duration_ms\n";
      header_written_ = true;
    }
    os << csv_field(r.tag) << ',' << r.fingerprint << ','
       << csv_field(r.backend) << ','
       << (r.from_cache ? 1 : 0) << ',' << (r.completed ? 1 : 0) << ','
       << r.cycles << ',' << r.cores << ',' << r.instructions << ','
       << util::fmt(r.ipc, 6) << ',' << util::fmt(r.mr1, 6) << ','
       << util::fmt(r.mr2, 6) << ',' << util::fmt(r.camat1, 6) << ','
       << util::fmt(r.camat2, 6) << ',' << util::fmt(r.cpi_exe, 6) << ','
       << util::fmt(r.duration_ms, 3) << "\n";
  } else {
    os << "{\"tag\":\"" << json_escape(r.tag) << "\",\"fingerprint\":\""
       << r.fingerprint << "\",\"backend\":\"" << json_escape(r.backend)
       << "\",\"from_cache\":" << (r.from_cache ? "true" : "false")
       << ",\"completed\":" << (r.completed ? "true" : "false")
       << ",\"cycles\":" << r.cycles << ",\"cores\":" << r.cores
       << ",\"instructions\":" << r.instructions << ",\"ipc\":" << util::fmt(r.ipc, 6)
       << ",\"mr1\":" << util::fmt(r.mr1, 6) << ",\"mr2\":" << util::fmt(r.mr2, 6)
       << ",\"camat1\":" << util::fmt(r.camat1, 6)
       << ",\"camat2\":" << util::fmt(r.camat2, 6)
       << ",\"cpi_exe\":" << util::fmt(r.cpi_exe, 6)
       << ",\"duration_ms\":" << util::fmt(r.duration_ms, 3) << "}\n";
  }
  // Append-then-flush: the record reaches the OS as one write, so a crash
  // can only ever tear the final line (which open() heals on resume).
  *out_ << os.str();
  out_->flush();
  ++records_;
}

}  // namespace lpm::exp
