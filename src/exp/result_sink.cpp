#include "exp/result_sink.hpp"

#include <sstream>

#include "exp/experiment_engine.hpp"
#include "util/error.hpp"
#include "util/fingerprint.hpp"
#include "util/table.hpp"

namespace lpm::exp {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

ResultRecord ResultRecord::make(const SimJob& job, const SimJobResult& result,
                                bool from_cache) {
  ResultRecord r;
  r.tag = job.tag;
  r.fingerprint = util::fingerprint_hex(result.fingerprint);
  r.from_cache = from_cache;
  r.completed = result.run.completed;
  r.cycles = result.run.cycles;
  r.cores = job.machine.num_cores;

  std::uint64_t l1_accesses = 0;
  std::uint64_t l1_misses = 0;
  for (const auto& core : result.run.cores) r.instructions += core.instructions;
  for (const auto& l1 : result.run.l1_cache) {
    l1_accesses += l1.accesses;
    l1_misses += l1.misses;
  }
  r.ipc = r.cycles == 0 ? 0.0
                        : static_cast<double>(r.instructions) /
                              static_cast<double>(r.cycles);
  r.mr1 = l1_accesses == 0 ? 0.0
                           : static_cast<double>(l1_misses) /
                                 static_cast<double>(l1_accesses);
  r.mr2 = result.run.mr2();
  if (!result.run.l1.empty()) r.camat1 = result.run.l1.front().camat();
  r.camat2 = result.run.l2.camat();
  if (!result.calib.empty()) r.cpi_exe = result.calib.front().cpi_exe;
  return r;
}

ResultSink::ResultSink(std::ostream& out, Format format)
    : out_(&out), format_(format) {}

ResultSink::ResultSink(Format format) : out_(&owned_), format_(format) {}

std::unique_ptr<ResultSink> ResultSink::open(const std::string& path) {
  const bool csv = path.size() >= 4 && path.rfind(".csv") == path.size() - 4;
  auto sink = std::unique_ptr<ResultSink>(
      new ResultSink(csv ? Format::kCsv : Format::kJsonLines));
  sink->owned_.open(path, std::ios::out | std::ios::app);
  util::require(sink->owned_.is_open(),
                "ResultSink: cannot open '" + path + "' for writing");
  return sink;
}

void ResultSink::write(const ResultRecord& r) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  if (format_ == Format::kCsv) {
    if (!header_written_) {
      os << "tag,fingerprint,from_cache,completed,cycles,cores,instructions,"
            "ipc,mr1,mr2,camat1,camat2,cpi_exe\n";
      header_written_ = true;
    }
    // Tags are free-form; quote them CSV-style.
    os << '"';
    for (const char c : r.tag) {
      if (c == '"') os << '"';
      os << c;
    }
    os << '"' << ',' << r.fingerprint << ',' << (r.from_cache ? 1 : 0) << ','
       << (r.completed ? 1 : 0) << ',' << r.cycles << ',' << r.cores << ','
       << r.instructions << ',' << util::fmt(r.ipc, 6) << ','
       << util::fmt(r.mr1, 6) << ',' << util::fmt(r.mr2, 6) << ','
       << util::fmt(r.camat1, 6) << ',' << util::fmt(r.camat2, 6) << ','
       << util::fmt(r.cpi_exe, 6) << "\n";
  } else {
    os << "{\"tag\":\"" << json_escape(r.tag) << "\",\"fingerprint\":\""
       << r.fingerprint << "\",\"from_cache\":" << (r.from_cache ? "true" : "false")
       << ",\"completed\":" << (r.completed ? "true" : "false")
       << ",\"cycles\":" << r.cycles << ",\"cores\":" << r.cores
       << ",\"instructions\":" << r.instructions << ",\"ipc\":" << util::fmt(r.ipc, 6)
       << ",\"mr1\":" << util::fmt(r.mr1, 6) << ",\"mr2\":" << util::fmt(r.mr2, 6)
       << ",\"camat1\":" << util::fmt(r.camat1, 6)
       << ",\"camat2\":" << util::fmt(r.camat2, 6)
       << ",\"cpi_exe\":" << util::fmt(r.cpi_exe, 6) << "}\n";
  }
  *out_ << os.str();
  out_->flush();
  ++records_;
}

}  // namespace lpm::exp
