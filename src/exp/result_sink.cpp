#include "exp/result_sink.hpp"

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "exp/experiment_engine.hpp"
#include "exp/journal.hpp"
#include "util/error.hpp"
#include "util/fingerprint.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace lpm::exp {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string csv_field(const std::string& value) {
  const bool needs_quotes =
      value.find_first_of(",\"\r\n") != std::string::npos;
  if (!needs_quotes) return value;
  std::string out;
  out.reserve(value.size() + 2);
  out += '"';
  for (const char c : value) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::vector<std::string> split_csv_record(const std::string& record) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  for (std::size_t i = 0; i < record.size(); ++i) {
    const char c = record[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < record.size() && record[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"' && field.empty()) {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else {
      field += c;
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

ResultRecord ResultRecord::make(const SimJob& job, const SimJobResult& result,
                                bool from_cache) {
  ResultRecord r;
  r.tag = job.tag;
  r.fingerprint = util::fingerprint_hex(result.fingerprint);
  r.from_cache = from_cache;
  r.completed = result.run.completed;
  r.cycles = result.run.cycles;
  r.cores = job.machine.num_cores;

  std::uint64_t l1_accesses = 0;
  std::uint64_t l1_misses = 0;
  for (const auto& core : result.run.cores) r.instructions += core.instructions;
  for (const auto& l1 : result.run.l1_cache) {
    l1_accesses += l1.accesses;
    l1_misses += l1.misses;
  }
  r.ipc = r.cycles == 0 ? 0.0
                        : static_cast<double>(r.instructions) /
                              static_cast<double>(r.cycles);
  r.mr1 = l1_accesses == 0 ? 0.0
                           : static_cast<double>(l1_misses) /
                                 static_cast<double>(l1_accesses);
  r.mr2 = result.run.mr2();
  if (!result.run.l1.empty()) r.camat1 = result.run.l1.front().camat();
  r.camat2 = result.run.l2.camat();
  if (!result.calib.empty()) r.cpi_exe = result.calib.front().cpi_exe;
  r.duration_ms = 1e3 * result.duration_seconds;
  return r;
}

ResultSink::ResultSink(std::ostream& out, Format format)
    : out_(&out), format_(format) {}

ResultSink::ResultSink(Format format) : out_(&owned_), format_(format) {}

std::unique_ptr<ResultSink> ResultSink::open(const std::string& path) {
  const bool csv = path.size() >= 4 && path.rfind(".csv") == path.size() - 4;
  auto sink = std::unique_ptr<ResultSink>(
      new ResultSink(csv ? Format::kCsv : Format::kJsonLines));

  // Heal a previous crash: a kill mid-append leaves at most one torn line,
  // which carries no complete record — drop it so every surviving line
  // parses. Re-runs then append clean records (header only once).
  if (std::filesystem::exists(path)) {
    const std::uintmax_t trimmed = trim_partial_last_line(path);
    if (trimmed > 0) {
      util::log_warn() << "results file '" << path << "': dropped " << trimmed
                       << " byte(s) of torn final line";
    }
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    if (!ec && size > 0) sink->header_written_ = true;
  }

  sink->owned_.open(path, std::ios::out | std::ios::app);
  if (!sink->owned_.is_open()) {
    throw util::IoError("ResultSink: cannot open '" + path + "' for writing");
  }
  return sink;
}

void ResultSink::write(const ResultRecord& r) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  if (format_ == Format::kCsv) {
    if (!header_written_) {
      os << "tag,fingerprint,from_cache,completed,cycles,cores,instructions,"
            "ipc,mr1,mr2,camat1,camat2,cpi_exe,duration_ms\n";
      header_written_ = true;
    }
    os << csv_field(r.tag) << ',' << r.fingerprint << ','
       << (r.from_cache ? 1 : 0) << ',' << (r.completed ? 1 : 0) << ','
       << r.cycles << ',' << r.cores << ',' << r.instructions << ','
       << util::fmt(r.ipc, 6) << ',' << util::fmt(r.mr1, 6) << ','
       << util::fmt(r.mr2, 6) << ',' << util::fmt(r.camat1, 6) << ','
       << util::fmt(r.camat2, 6) << ',' << util::fmt(r.cpi_exe, 6) << ','
       << util::fmt(r.duration_ms, 3) << "\n";
  } else {
    os << "{\"tag\":\"" << json_escape(r.tag) << "\",\"fingerprint\":\""
       << r.fingerprint << "\",\"from_cache\":" << (r.from_cache ? "true" : "false")
       << ",\"completed\":" << (r.completed ? "true" : "false")
       << ",\"cycles\":" << r.cycles << ",\"cores\":" << r.cores
       << ",\"instructions\":" << r.instructions << ",\"ipc\":" << util::fmt(r.ipc, 6)
       << ",\"mr1\":" << util::fmt(r.mr1, 6) << ",\"mr2\":" << util::fmt(r.mr2, 6)
       << ",\"camat1\":" << util::fmt(r.camat1, 6)
       << ",\"camat2\":" << util::fmt(r.camat2, 6)
       << ",\"cpi_exe\":" << util::fmt(r.cpi_exe, 6)
       << ",\"duration_ms\":" << util::fmt(r.duration_ms, 3) << "}\n";
  }
  // Append-then-flush: the record reaches the OS as one write, so a crash
  // can only ever tear the final line (which open() heals on resume).
  *out_ << os.str();
  out_->flush();
  ++records_;
}

}  // namespace lpm::exp
