#include "exp/journal.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "util/error.hpp"
#include "util/fingerprint.hpp"
#include "util/log.hpp"

namespace lpm::exp {

namespace {

/// Parses one journal line; returns true and fills `fp` for a well-formed
/// "done <hex> ..." record. Unknown or damaged lines are simply skipped —
/// the journal is an optimization, never an authority on correctness.
bool parse_done_line(const std::string& line, std::uint64_t& fp) {
  std::istringstream in(line);
  std::string verb;
  std::string hex;
  if (!(in >> verb >> hex)) return false;
  if (verb != "done" || hex.empty()) return false;
  char* end = nullptr;
  fp = std::strtoull(hex.c_str(), &end, 16);
  return end != nullptr && *end == '\0';
}

}  // namespace

std::uintmax_t trim_partial_last_line(const std::string& path) {
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  if (ec || size == 0) return 0;

  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return 0;
  in.seekg(-1, std::ios::end);
  char last = '\0';
  in.get(last);
  if (last == '\n') return 0;

  // Walk back to the final newline; everything after it is the torn tail.
  std::uintmax_t keep = 0;
  for (std::uintmax_t offset = size; offset-- > 0;) {
    in.seekg(static_cast<std::streamoff>(offset));
    char c = '\0';
    in.get(c);
    if (c == '\n') {
      keep = offset + 1;
      break;
    }
  }
  in.close();
  std::filesystem::resize_file(path, keep, ec);
  if (ec) {
    throw util::IoError("cannot trim torn line in '" + path +
                        "': " + ec.message());
  }
  return size - keep;
}

SweepJournal::SweepJournal(std::string path) : path_(std::move(path)) {}

std::unique_ptr<SweepJournal> SweepJournal::open(const std::string& path) {
  auto journal = std::unique_ptr<SweepJournal>(new SweepJournal(path));

  if (std::filesystem::exists(path)) {
    const std::uintmax_t trimmed = trim_partial_last_line(path);
    if (trimmed > 0) {
      util::log_warn() << "journal '" << path << "': dropped " << trimmed
                       << " byte(s) of torn final line";
    }
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      std::uint64_t fp = 0;
      if (parse_done_line(line, fp)) journal->done_.insert(fp);
    }
  }

  journal->out_.open(path, std::ios::out | std::ios::app);
  if (!journal->out_.is_open()) {
    throw util::IoError("SweepJournal: cannot open '" + path + "' for append");
  }
  return journal;
}

bool SweepJournal::completed(std::uint64_t fingerprint) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return done_.contains(fingerprint);
}

void SweepJournal::mark_done(std::uint64_t fingerprint, const std::string& tag,
                             double duration_ms) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!done_.insert(fingerprint).second) return;
  // Tags are free-form; newlines would fake extra records, so flatten them.
  std::string flat = tag;
  for (char& c : flat) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  char dur[32];
  std::snprintf(dur, sizeof(dur), "%.3f", duration_ms < 0 ? 0.0 : duration_ms);
  out_ << "done " << util::fingerprint_hex(fingerprint) << ' ' << dur << ' '
       << flat << '\n';
  out_.flush();
  if (!out_) {
    done_.erase(fingerprint);
    throw util::IoError("SweepJournal: append to '" + path_ + "' failed");
  }
}

std::size_t SweepJournal::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return done_.size();
}

}  // namespace lpm::exp
