// Structured result sink: one flat record per experiment-engine job, as CSV
// or JSON lines. This is the machine-readable counterpart of the benches'
// ASCII tables — sweeps land in a file a notebook can load directly instead
// of an ad-hoc printf format per bench.
//
// Crash safety: records are appended and flushed one line at a time, so a
// killed sweep loses at most its in-flight line. open() heals exactly that
// case — a torn final line is truncated away before appending resumes, and
// the CSV header is only written into an empty file.
//
// Thread safety: write() is safe from any thread (one internal mutex
// serializes formatting and the append). ResultRecord::make and the CSV
// helpers are pure functions. open() must not race another open() of the
// same path.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace lpm::exp {

struct SimJob;
struct SimJobResult;

/// RFC 4180 CSV field encoding: fields containing commas, quotes, CR or LF
/// are wrapped in double quotes with embedded quotes doubled; all other
/// fields pass through unchanged.
[[nodiscard]] std::string csv_field(const std::string& value);

/// Inverse of csv_field over one CSV record (which may span multiple
/// physical lines when a quoted field embeds newlines). Splits into
/// unescaped fields; tolerant of unquoted fields.
[[nodiscard]] std::vector<std::string> split_csv_record(const std::string& record);

/// The flattened per-job record (aggregated over cores where per-core
/// detail exists; the full SystemResult stays available on SimJobResult).
struct ResultRecord {
  std::string tag;
  std::string fingerprint;  ///< hex cache key
  /// Model backend that produced the row ("cycle", "rdh", "fa"); rows of
  /// different fidelities for one (machine, workloads) stay distinguishable.
  std::string backend = "cycle";
  bool from_cache = false;
  bool completed = false;
  std::uint64_t cycles = 0;
  std::uint32_t cores = 0;
  std::uint64_t instructions = 0;  ///< summed over cores
  double ipc = 0.0;                ///< total instructions / cycles
  double mr1 = 0.0;                ///< aggregate L1 demand miss rate
  double mr2 = 0.0;                ///< shared L2/LLC miss rate
  double camat1 = 0.0;             ///< core-0 L1 C-AMAT (1/APC)
  double camat2 = 0.0;             ///< shared L2 C-AMAT
  double cpi_exe = 0.0;            ///< core-0 calibration (0 if not requested)
  double duration_ms = 0.0;        ///< wall-clock execution time of the run
                                   ///< that produced the result (cache-served
                                   ///< rows repeat the producing run's time)

  [[nodiscard]] static ResultRecord make(const SimJob& job,
                                         const SimJobResult& result,
                                         bool from_cache);
};

/// Reads records back from a sink file (CSV vs JSON lines by extension,
/// same rule as ResultSink::open). Columns/keys are matched by name, so
/// files survive reordering and unknown fields. Backward compatible with
/// files written before the duration-unit unification (a legacy
/// `duration_seconds` column/key is converted to milliseconds on load) and
/// with files written before multi-fidelity backends (a missing `backend`
/// column/key loads as "cycle" — the only fidelity that existed then).
/// Throws util::IoError if the file cannot be read.
[[nodiscard]] std::vector<ResultRecord> load_result_records(
    const std::string& path);

class ResultSink {
 public:
  enum class Format { kCsv, kJsonLines };

  /// Writes to a caller-owned stream.
  ResultSink(std::ostream& out, Format format);

  /// Opens `path` for appending; format from the extension (.csv vs
  /// .jsonl/.ndjson/anything else). A torn final line from a crashed
  /// previous run is truncated away, and an existing non-empty CSV file
  /// keeps its header (no duplicate is emitted). Throws util::IoError if
  /// unwritable.
  [[nodiscard]] static std::unique_ptr<ResultSink> open(const std::string& path);

  /// Appends one record (thread-safe; the CSV header is emitted once).
  void write(const ResultRecord& record);

  [[nodiscard]] std::uint64_t records_written() const { return records_; }

 private:
  explicit ResultSink(Format format);  // owned-file variant, used by open()

  std::mutex mutex_;
  std::ofstream owned_;
  std::ostream* out_;
  Format format_;
  bool header_written_ = false;
  std::uint64_t records_ = 0;
};

}  // namespace lpm::exp
