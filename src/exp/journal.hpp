// Sweep journal: crash-safe record of which experiment points completed.
//
// One line per finished point, appended *after* its result reached the
// sink and flushed immediately:
//
//   done <16-hex-fingerprint> <duration-ms> <tag>
//
// duration-ms is the wall-clock execution time of the run that produced
// the point (the same number the ResultSink records as duration_ms, so the
// two files agree on timing). Lines from older journals without the
// duration field still load — the parser only authenticates the verb and
// fingerprint.
//
// On reopen the journal trims a torn final line (a crash mid-append leaves
// at most one partial line, which carries no information) and reloads the
// completed set. A killed sweep rerun against the same journal skips every
// point already marked done — the engine's run_batch_outcomes() returns
// those as `skipped` outcomes without re-simulating, and their data rows
// are already in the (equally crash-safe) ResultSink file from the first
// run.
//
// Thread safety: completed(), mark_done() and size() are safe from any
// thread (one internal mutex); in practice the engine calls them only from
// the submitting thread so journal order matches submission order. open()
// must not race another open() of the same path (the reopen-and-truncate
// dance is not atomic across processes).
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>

namespace lpm::exp {

/// Truncates `path` to end at its final newline, dropping a torn partial
/// last line left by a crash mid-append. Returns the number of bytes
/// removed (0 when the file is absent, empty, or ends cleanly).
std::uintmax_t trim_partial_last_line(const std::string& path);

class SweepJournal {
 public:
  /// Opens (creating if needed) the journal at `path`: trims a torn tail,
  /// loads the completed set, and positions for appending. Throws
  /// util::IoError when the path is unwritable.
  [[nodiscard]] static std::unique_ptr<SweepJournal> open(const std::string& path);

  /// Whether `fingerprint` was marked done (by this process or a previous
  /// one). Thread-safe.
  [[nodiscard]] bool completed(std::uint64_t fingerprint) const;

  /// Marks a point done (append + flush); idempotent. Thread-safe.
  /// `duration_ms` is the wall-clock execution time recorded in the line
  /// (0 when the caller has no timing, e.g. hand-written journals).
  void mark_done(std::uint64_t fingerprint, const std::string& tag,
                 double duration_ms = 0.0);

  /// Completed points currently known.
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  explicit SweepJournal(std::string path);

  mutable std::mutex mutex_;
  std::string path_;
  std::ofstream out_;
  std::unordered_set<std::uint64_t> done_;
};

}  // namespace lpm::exp
