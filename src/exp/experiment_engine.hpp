// The experiment engine: every simulation in the repo runs through here.
//
// Consumers (the LPM design-space walk, the NUCA scheduler evaluation, the
// paper-artefact benches, the examples) used to hand-roll a serial
// build-System-run-collect loop each. The engine replaces those loops with
// one abstraction:
//
//  * a SimJob describes one experiment point: a MachineConfig, one
//    WorkloadProfile per core, and whether to also run the perfect-cache
//    CPIexe calibration;
//  * a fixed-size worker pool runs independent sim::System instances
//    concurrently (each System is fully self-contained, so the parallelism
//    is embarrassing once construction is job-local);
//  * a memoizing cache keyed by a stable fingerprint of
//    (MachineConfig, workloads, calibrate) means no point is ever simulated
//    twice in a process — the LPM threshold loop and the benches get
//    repeated evaluations for free;
//  * an optional ResultSink receives one structured (CSV / JSON lines)
//    record per job, replacing ad-hoc printf tables for machine-readable
//    output.
//
// Determinism: simulations are seeded and share no mutable state, results
// are returned in submission order, and cache/sink bookkeeping happens on
// the submitting thread — so an engine with N workers is bit-identical to
// a serial run (asserted by tests/exp/experiment_engine_test.cpp).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sim/machine_config.hpp"
#include "sim/system.hpp"
#include "trace/workload_profile.hpp"

namespace lpm::exp {

class ResultSink;

/// One experiment point: what to simulate and what to collect.
struct SimJob {
  sim::MachineConfig machine;
  /// One workload per core (workloads.size() must equal machine.num_cores).
  std::vector<trace::WorkloadProfile> workloads;
  /// Also run the perfect-cache CPIexe/fmem calibration for every workload
  /// (sim::measure_cpi_exe); needed by any consumer computing LPM ratios.
  bool calibrate = false;
  /// Free-form label carried into ResultSink records; NOT part of the
  /// cache key (two jobs differing only in tag share one simulation).
  std::string tag;

  /// Single-core convenience constructor used by most consumers.
  [[nodiscard]] static SimJob solo(sim::MachineConfig machine,
                                   trace::WorkloadProfile workload,
                                   bool calibrate = true, std::string tag = "");

  void validate() const;
  /// Stable cache key over machine + workloads + calibrate (not tag).
  [[nodiscard]] std::uint64_t fingerprint() const;
};

/// Everything one job produces.
struct SimJobResult {
  std::uint64_t fingerprint = 0;
  sim::SystemResult run;
  /// Per-workload calibration, in core order; empty unless job.calibrate.
  std::vector<sim::CpiExeResult> calib;
};

/// Results are shared immutable objects: a cache hit returns the *same*
/// object as the run that produced it.
using SimResultPtr = std::shared_ptr<const SimJobResult>;

class ExperimentEngine {
 public:
  struct Options {
    /// Worker threads. 0 = auto: $LPM_THREADS if set, else
    /// std::thread::hardware_concurrency(). 1 = fully serial (no pool).
    unsigned threads = 0;
    /// Disable to force every submission to simulate (benchmarking only).
    bool cache_enabled = true;
    /// Optional structured-record sink (non-owning; may be nullptr).
    ResultSink* sink = nullptr;
  };

  ExperimentEngine();
  explicit ExperimentEngine(Options opts);
  ~ExperimentEngine();
  ExperimentEngine(const ExperimentEngine&) = delete;
  ExperimentEngine& operator=(const ExperimentEngine&) = delete;

  /// Runs one job (cache-served when possible). Blocking.
  SimResultPtr run(const SimJob& job);

  /// Runs a batch concurrently across the worker pool; identical jobs
  /// within the batch are simulated once. Results are returned in
  /// submission order. Blocking.
  std::vector<SimResultPtr> run_batch(const std::vector<SimJob>& jobs);

  [[nodiscard]] unsigned threads() const { return threads_; }
  /// Simulations actually executed (== distinct points seen).
  [[nodiscard]] std::uint64_t simulations_executed() const {
    return simulations_executed_.load(std::memory_order_relaxed);
  }
  /// Submissions served from the memo cache.
  [[nodiscard]] std::uint64_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  /// Aggregate wall time spent inside simulations, across all workers.
  /// busy_seconds() / elapsed wall time ~= achieved parallel speedup.
  [[nodiscard]] double busy_seconds() const {
    return 1e-9 * static_cast<double>(busy_nanos_.load(std::memory_order_relaxed));
  }
  [[nodiscard]] std::size_t cache_size() const;
  void clear_cache();
  void set_sink(ResultSink* sink);

  /// Process-wide engine shared by all consumers that do not bring their
  /// own: one cache means e.g. a bench and the LPM walk never re-simulate
  /// each other's points. Thread count from $LPM_THREADS; if $LPM_RESULTS
  /// is set, every executed job is appended there (.csv or .jsonl).
  static ExperimentEngine& shared();

 private:
  void worker_loop(int worker_id);
  void enqueue(std::function<void()> task);
  /// Simulates one job (no cache interaction); runs on a worker or, for
  /// serial engines, on the submitting thread.
  SimJobResult execute(const SimJob& job);

  unsigned threads_ = 1;
  bool cache_enabled_ = true;

  mutable std::mutex cache_mutex_;
  std::unordered_map<std::uint64_t, SimResultPtr> cache_;

  std::mutex sink_mutex_;
  ResultSink* sink_ = nullptr;

  std::atomic<std::uint64_t> simulations_executed_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> busy_nanos_{0};

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::function<void()>> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace lpm::exp
