// The experiment engine: every simulation in the repo runs through here.
//
// Consumers (the LPM design-space walk, the NUCA scheduler evaluation, the
// paper-artefact benches, the examples) used to hand-roll a serial
// build-System-run-collect loop each. The engine replaces those loops with
// one abstraction:
//
//  * a SimJob describes one experiment point: a MachineConfig, one
//    WorkloadProfile per core, and whether to also run the perfect-cache
//    CPIexe calibration;
//  * a fixed-size worker pool runs independent sim::System instances
//    concurrently (each System is fully self-contained, so the parallelism
//    is embarrassing once construction is job-local);
//  * a memoizing cache keyed by a stable fingerprint of
//    (MachineConfig, workloads, calibrate) means no point is ever simulated
//    twice in a process — the LPM threshold loop and the benches get
//    repeated evaluations for free;
//  * an optional ResultSink receives one structured (CSV / JSON lines)
//    record per job, replacing ad-hoc printf tables for machine-readable
//    output.
//
// Determinism: simulations are seeded and share no mutable state, results
// are returned in submission order, and cache/sink bookkeeping happens on
// the submitting thread — so an engine with N workers is bit-identical to
// a serial run (asserted by tests/exp/experiment_engine_test.cpp).
//
// Fault tolerance: a job failure is data, not control flow. Every job in a
// batch produces a SimJobOutcome — result or a typed (ErrorCode, message)
// pair — and a FailurePolicy decides whether one failure cancels the rest
// of the batch (fail-fast) or the sweep keeps going (collect-and-continue).
// Failed executions retry up to max_retries times with deterministic,
// seeded jittered backoff; a watchdog thread cancels over-budget jobs
// cooperatively through sim::RunGuard (never by killing a thread). A
// FaultPlan injects failures at chosen executed-point indices so all of
// these paths are testable, and an optional SweepJournal lets a killed
// sweep resume without re-simulating completed points
// (tests/exp/fault_injection_test.cpp).
//
// Concurrency core (DESIGN.md "Engine concurrency"): the job queue is a
// bounded lock-free MPMC ring (exp/mpmc_queue.hpp) — submitters never take
// a lock to hand work to the pool, and workers spin briefly, then yield,
// then park on a condition variable only when the ring stays empty.
// Outcomes land in per-group cache-line-aligned slots (single writer each)
// and are merged back into submission order on the submitting thread —
// merge-on-read, the same shape src/obs uses for metric shards — which is
// what keeps N workers bit-identical to serial. An affinity policy
// (none | compact | spread) optionally pins workers to distinct allowed
// CPUs via pthread_setaffinity_np, silently degrading where the cpuset
// forbids pinning or the machine has a single hardware thread.
//
// Observability: the engine publishes its telemetry (job counts, memo-cache
// hits/misses, retry/timeout/fault tallies, queue-wait and run-time
// histograms, exp.queue.* ring-contention counters, per-worker occupancy)
// to obs::MetricsRegistry::global() and emits exp.run_batch / exp.execute
// spans on the global trace session — see OBSERVABILITY.md for the name
// catalogue and the $LPM_METRICS / $LPM_TRACE knobs.
//
// Thread safety: run(), run_batch() and run_batch_outcomes() are blocking
// and may be called from any thread, including concurrently (each batch
// carries its own completion state); they must NOT be called from inside a
// worker task (the pool would deadlock waiting on itself). set_sink() and
// clear_cache() are safe from any thread. The counters
// (simulations_executed() etc.) and cache_size() are safe from any thread
// at any time. Options and the engine itself must outlive all in-flight
// batches; destruction joins the pool.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "exp/fault_plan.hpp"
#include "exp/mpmc_queue.hpp"
#include "obs/metrics.hpp"
#include "sim/machine_config.hpp"
#include "sim/system.hpp"
#include "trace/workload_profile.hpp"
#include "util/error.hpp"

namespace lpm::exp {

class ResultSink;
class SweepJournal;

/// RAII wall-clock timer feeding a registry histogram (and optionally a
/// trace span); re-exported here because the engine's consumers time their
/// sweep phases with it. See obs/metrics.hpp.
using ScopedTimer = obs::ScopedTimer;

/// Name of the built-in cycle-accurate backend (the sim::System path).
inline constexpr const char* kCycleBackend = "cycle";

/// Ceiling on a single retry backoff (one hour). The exponential schedule
/// saturates here instead of wrapping: both the shift exponent and the
/// shifted base are clamped, so retry_backoff_ms is monotone in the attempt
/// count for every base value, never UB, and never wraps back to a tiny
/// delay under extreme inputs.
inline constexpr std::uint64_t kMaxRetryBackoffMs = 3'600'000;

/// One experiment point: what to simulate and what to collect.
struct SimJob {
  sim::MachineConfig machine;
  /// One workload per core (workloads.size() must equal machine.num_cores).
  std::vector<trace::WorkloadProfile> workloads;
  /// Also run the perfect-cache CPIexe/fmem calibration for every workload
  /// (sim::measure_cpi_exe); needed by any consumer computing LPM ratios.
  bool calibrate = false;
  /// Free-form label carried into ResultSink records; NOT part of the
  /// cache key (two jobs differing only in tag share one simulation).
  std::string tag;
  /// Model backend evaluating this point. kCycleBackend runs sim::System;
  /// any other name must have been registered through
  /// ExperimentEngine::register_backend_executor (src/model registers the
  /// analytic "rdh" / "fa" backends). Part of the cache key: the same
  /// (machine, workloads) evaluated at different fidelities are different
  /// points and never alias in the memo cache.
  std::string backend = kCycleBackend;

  /// Single-core convenience constructor used by most consumers.
  [[nodiscard]] static SimJob solo(sim::MachineConfig machine,
                                   trace::WorkloadProfile workload,
                                   bool calibrate = true, std::string tag = "");

  void validate() const;
  /// Stable cache key over machine + workloads + calibrate + backend
  /// (not tag).
  [[nodiscard]] std::uint64_t fingerprint() const;
};

/// Everything one job produces.
struct SimJobResult {
  std::uint64_t fingerprint = 0;
  /// Backend that produced this result (mirrors SimJob::backend); sink
  /// records carry it so rows of different fidelities stay distinguishable.
  std::string backend = kCycleBackend;
  sim::SystemResult run;
  /// Per-workload calibration, in core order; empty unless job.calibrate.
  std::vector<sim::CpiExeResult> calib;
  /// Wall-clock milliseconds the successful execution took (simulation +
  /// calibration). Milliseconds are the one duration unit across the repo:
  /// sinks (ResultRecord::duration_ms), the sweep journal, and the perf
  /// harness all record the same field. Rides the shared result object, so
  /// a cache-served outcome reports the duration of the run that produced
  /// it.
  double duration_ms = 0.0;
};

/// Results are shared immutable objects: a cache hit returns the *same*
/// object as the run that produced it.
using SimResultPtr = std::shared_ptr<const SimJobResult>;

/// What a batch does after one of its jobs fails.
enum class FailurePolicy {
  /// Stop launching further jobs; jobs never started come back kCancelled.
  /// The right choice when later work depends on earlier results (the LPM
  /// walk's on-path evaluations, schedule ranking).
  kFailFast,
  /// Run every job regardless; failures are reported per job. The right
  /// choice for sweeps and speculative batches where each point stands
  /// alone.
  kCollect,
};

/// Result-or-error for one submitted job; batches never silently drop a
/// failure and never lose its message.
struct SimJobOutcome {
  std::uint64_t fingerprint = 0;
  /// Non-null iff the job succeeded (ok()).
  SimResultPtr result;
  util::ErrorCode error = util::ErrorCode::kNone;
  /// First error of the final attempt (tagged with the job on rethrow).
  std::string error_message;
  /// Execution attempts made (0 for cache hits and journal skips).
  unsigned attempts = 0;
  bool from_cache = false;
  /// Skipped because the engine's SweepJournal already marks it done (a
  /// resumed sweep; the data row is in the previous run's sink file).
  bool skipped = false;

  [[nodiscard]] bool ok() const { return result != nullptr; }
  /// Returns the result or rethrows the recorded failure with its
  /// concrete exception type (util::TimeoutError etc.).
  [[nodiscard]] const SimResultPtr& value() const;
};

/// Per-batch knobs for run_batch_outcomes.
struct BatchOptions {
  FailurePolicy policy = FailurePolicy::kFailFast;
  /// Skip points the engine's SweepJournal marks done (returned as
  /// `skipped` outcomes with no result object). Resumable sweep drivers
  /// opt in; consumers that need every result object leave this off.
  bool consult_journal = false;
};

/// Evaluates one non-cycle job and returns a fully-populated result (run
/// counters, optional calibration; fingerprint/duration are filled by the
/// engine). Must be pure in the job (deterministic, no shared mutable
/// state) — the memo cache assumes it. `guard` is the watchdog cancel flag
/// (may be null); long-running executors should poll it.
using BackendExecutor =
    std::function<SimJobResult(const SimJob&, const sim::RunGuard*)>;

/// Where the pool's worker threads run relative to the CPUs the process is
/// allowed on (the cpuset from sched_getaffinity, not the raw machine).
enum class AffinityPolicy {
  /// No pinning; the OS scheduler places workers freely.
  kNone,
  /// Worker i pins to allowed CPU i mod n — packs workers onto
  /// neighbouring CPUs (shared caches; the single-socket sweet spot).
  kCompact,
  /// Worker i pins to allowed CPU floor(i*n/threads) mod n — spaces
  /// workers across the allowed set (maximum aggregate bandwidth on
  /// multi-socket / multi-CCX parts).
  kSpread,
};

[[nodiscard]] constexpr const char* affinity_policy_name(AffinityPolicy p) {
  switch (p) {
    case AffinityPolicy::kNone: return "none";
    case AffinityPolicy::kCompact: return "compact";
    case AffinityPolicy::kSpread: return "spread";
  }
  return "?";
}

/// Parses "none" / "compact" / "spread" (the $LPM_AFFINITY values);
/// nullopt for anything else.
[[nodiscard]] std::optional<AffinityPolicy> parse_affinity_policy(
    std::string_view name);

/// Per-batch coordination block (defined in the .cpp); the ring carries
/// (batch, group-index) pairs instead of heap-allocated closures.
struct BatchCtx;

/// One unit of pool work: group `group` of the batch behind `ctx`. POD on
/// purpose — pushing a task allocates nothing.
struct TaskItem {
  BatchCtx* ctx = nullptr;
  std::uint32_t group = 0;
  /// Set only on sampled pushes (queue-wait telemetry); the default
  /// epoch value marks unsampled tasks.
  std::chrono::steady_clock::time_point enqueued_at{};
};

class ExperimentEngine {
 public:
  /// Engine construction knobs.
  ///
  /// Prefer `Options::builder()` over filling the bare struct: the builder
  /// validates at build() (thread ceiling, power-of-two ring capacity,
  /// affinity vs hardware_concurrency) so an inconsistent engine
  /// configuration never reaches the constructor — the same idiom as
  /// sim::MachineConfig::builder(), and the documented house style since
  /// DESIGN.md deprecated bare-struct init for both.
  struct Options {
    /// Worker threads. 0 = auto: $LPM_THREADS if set, else
    /// std::thread::hardware_concurrency(). 1 = fully serial (no pool).
    unsigned threads = 0;
    /// Disable to force every submission to simulate (benchmarking only).
    bool cache_enabled = true;
    /// Optional structured-record sink (non-owning; may be nullptr).
    ResultSink* sink = nullptr;
    /// Re-executions allowed after a retryable failure (sim/io/timeout;
    /// config errors never retry). 0 = fail on first error.
    unsigned max_retries = 0;
    /// Base backoff before retry k: base << (k-1) plus deterministic
    /// jitter in [0, base] from (backoff_seed, fingerprint, attempt) —
    /// see retry_backoff_ms(). 0 = retry immediately.
    std::uint64_t retry_backoff_base_ms = 0;
    /// Seed for the jittered backoff; fixed so retry schedules are
    /// reproducible run-to-run.
    std::uint64_t backoff_seed = 0x5eedbacc0ffULL;
    /// Wall-clock budget per job execution; 0 = no watchdog. Over-budget
    /// jobs are cancelled cooperatively (sim::RunGuard) and come back as
    /// util::ErrorCode::kTimeout.
    std::uint64_t job_timeout_ms = 0;
    /// Default policy for run_batch_outcomes(jobs) without BatchOptions.
    FailurePolicy policy = FailurePolicy::kFailFast;
    /// Deterministic fault injection (see fault_plan.hpp); empty = none.
    FaultPlan fault_plan;
    /// Optional crash-safe sweep journal (non-owning; may be nullptr).
    SweepJournal* journal = nullptr;
    /// Capacity of the lock-free MPMC job ring (power of two >= 1). Only
    /// bounds in-flight handoff, not batch size: a submitter whose push
    /// finds the ring full spins/yields until a worker drains a slot.
    std::size_t queue_capacity = 1024;
    /// Worker CPU pinning policy. Pinning silently degrades (workers stay
    /// unpinned, exp.workers.pin_failed counts) where the cpuset forbids
    /// it or fewer than two CPUs are allowed.
    AffinityPolicy affinity = AffinityPolicy::kNone;

    class Builder;
    /// Fluent construction from the defaults; build() validates and throws
    /// util::ConfigError on any inconsistency. Preferred over mutating the
    /// bare struct (see DESIGN.md).
    [[nodiscard]] static Builder builder();
    /// Same, but starting from an existing Options value.
    [[nodiscard]] static Builder builder(Options base);
  };

  ExperimentEngine();
  explicit ExperimentEngine(Options opts);
  ~ExperimentEngine();
  ExperimentEngine(const ExperimentEngine&) = delete;
  ExperimentEngine& operator=(const ExperimentEngine&) = delete;

  /// Runs one job (cache-served when possible). Blocking. Throws the
  /// job's typed error on failure (after exhausting retries).
  SimResultPtr run(const SimJob& job);

  /// Runs a batch concurrently across the worker pool; identical jobs
  /// within the batch are simulated once. Results are returned in
  /// submission order. Blocking. Fail-fast: the first failed job's typed
  /// error is rethrown, tagged with the job's tag and fingerprint; use
  /// run_batch_outcomes() to observe per-job failures instead.
  std::vector<SimResultPtr> run_batch(const std::vector<SimJob>& jobs);

  /// Like run_batch, but failures become data: one SimJobOutcome per job,
  /// in submission order, never throwing for job-level errors.
  std::vector<SimJobOutcome> run_batch_outcomes(const std::vector<SimJob>& jobs);
  std::vector<SimJobOutcome> run_batch_outcomes(const std::vector<SimJob>& jobs,
                                                BatchOptions batch);

  /// Deterministic jittered backoff before retry `attempt` (1-based count
  /// of failures so far): base << (attempt-1) plus a [0, base] jitter
  /// drawn from (seed, fingerprint, attempt), with both the exponent and
  /// the result saturated so the delay never exceeds kMaxRetryBackoffMs
  /// (and never wraps for large attempts or bases). Pure function — two
  /// engines with the same seed produce identical retry schedules.
  [[nodiscard]] static std::uint64_t retry_backoff_ms(std::uint64_t seed,
                                                      std::uint64_t fingerprint,
                                                      unsigned attempt,
                                                      std::uint64_t base_ms);

  [[nodiscard]] unsigned threads() const { return threads_; }
  [[nodiscard]] AffinityPolicy affinity() const { return affinity_; }
  [[nodiscard]] std::size_t queue_capacity() const { return queue_capacity_; }
  /// Workers successfully pinned to a CPU (0 under AffinityPolicy::kNone,
  /// on single-CPU cpusets, and wherever pinning silently degraded).
  [[nodiscard]] unsigned workers_pinned() const {
    return workers_pinned_.load(std::memory_order_relaxed);
  }
  /// Workers whose pthread_setaffinity_np call was rejected (restricted
  /// cpuset); these workers run unpinned — degradation, not failure.
  [[nodiscard]] unsigned workers_pin_failed() const {
    return workers_pin_failed_.load(std::memory_order_relaxed);
  }
  /// Tasks executed per worker so far (merge-on-read over the per-worker
  /// shards; index = worker id). Empty for serial engines.
  [[nodiscard]] std::vector<std::uint64_t> worker_task_counts() const;
  /// Simulations actually executed (== distinct points seen).
  [[nodiscard]] std::uint64_t simulations_executed() const {
    return simulations_executed_.load(std::memory_order_relaxed);
  }
  /// Submissions served from the memo cache.
  [[nodiscard]] std::uint64_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  /// Re-executions performed after retryable failures.
  [[nodiscard]] std::uint64_t retries_performed() const {
    return retries_performed_.load(std::memory_order_relaxed);
  }
  /// Jobs whose final attempt failed (after retries, all policies).
  [[nodiscard]] std::uint64_t jobs_failed() const {
    return jobs_failed_.load(std::memory_order_relaxed);
  }
  /// Points skipped because the journal already marks them done.
  [[nodiscard]] std::uint64_t journal_skips() const {
    return journal_skips_.load(std::memory_order_relaxed);
  }
  /// Aggregate wall time spent inside simulations, across all workers.
  /// busy_seconds() / elapsed wall time ~= achieved parallel speedup.
  [[nodiscard]] double busy_seconds() const {
    return 1e-9 * static_cast<double>(busy_nanos_.load(std::memory_order_relaxed));
  }
  [[nodiscard]] std::size_t cache_size() const;
  void clear_cache();
  void set_sink(ResultSink* sink);

  /// Process-wide engine shared by all consumers that do not bring their
  /// own: one cache means e.g. a bench and the LPM walk never re-simulate
  /// each other's points. Thread count from $LPM_THREADS; if $LPM_RESULTS
  /// is set, every executed job is appended there (.csv or .jsonl).
  /// Fault-tolerance knobs from $LPM_MAX_RETRIES, $LPM_JOB_TIMEOUT_MS,
  /// $LPM_FAULT_SPEC and $LPM_JOURNAL.
  static ExperimentEngine& shared();

  /// Registers (or replaces) the executor for a non-cycle backend name.
  /// Process-wide and engine-independent — an executor registered once is
  /// visible to every engine, including shared(). Registering the cycle
  /// backend is a config error. Thread-safe; idempotent re-registration is
  /// fine (src/model registers its analytic executors from every backend
  /// constructor).
  static void register_backend_executor(const std::string& name,
                                        BackendExecutor executor);
  /// True for kCycleBackend and every registered executor name.
  [[nodiscard]] static bool has_backend_executor(const std::string& name);

 private:
  /// Per-worker stat shard; cache-line aligned so workers never
  /// false-share. Merged on read (worker_task_counts(), the
  /// exp.worker.tasks histogram at shutdown) — never locked.
  struct alignas(64) WorkerShard {
    std::atomic<std::uint64_t> tasks{0};
  };

  void worker_loop(int worker_id);
  /// Publishes one task to the ring (spinning/yielding while full) and
  /// wakes a parked worker if any.
  void push_task(TaskItem item);
  /// Pops the next task: bounded spin, then yield, then park with a 2 ms
  /// bound. False only at shutdown with the ring drained.
  bool next_task(TaskItem& item);
  /// Runs one ring task end to end (group execution + batch completion).
  void run_task(const TaskItem& item);
  /// Executes group `gi` of `ctx` into its outcome slot (single writer).
  void run_group(BatchCtx& ctx, std::uint32_t gi);
  /// Cached per-backend "model.backend.evals.<name>" counter handle (one
  /// name lookup per backend per engine, not per job).
  obs::MetricsRegistry::Counter backend_evals(const std::string& backend);
  /// Simulates one job (no cache interaction); runs on a worker or, for
  /// serial engines, on the submitting thread. `fault` injects a failure
  /// before the simulation starts; `guard` is the watchdog's cancel flag
  /// (null when no timeout is configured).
  SimJobResult execute(const SimJob& job, const sim::RunGuard* guard,
                       std::optional<FaultKind> fault);
  /// One job with retry/backoff + watchdog registration; never throws for
  /// job-level failures. `fault_index` is the deterministic executed-point
  /// index consumed by the fault plan (faults fire on attempt 1 only).
  SimJobOutcome execute_with_retry(const SimJob& job, std::uint64_t fingerprint,
                                   std::uint64_t fault_index);
  std::vector<SimJobOutcome> run_batch_impl(const std::vector<SimJob>& jobs,
                                            FailurePolicy policy,
                                            bool consult_journal);

  // Watchdog bookkeeping: execute_with_retry registers each attempt's
  // guard + deadline; the watchdog thread flips cancel flags once the
  // deadline passes. Guards are shared_ptr so a late watchdog scan can
  // never touch a dead flag.
  std::uint64_t watchdog_register(std::shared_ptr<sim::RunGuard> guard);
  void watchdog_unregister(std::uint64_t ticket);
  void watchdog_loop();

  unsigned threads_ = 1;
  std::size_t queue_capacity_ = 1024;
  AffinityPolicy affinity_ = AffinityPolicy::kNone;
  bool cache_enabled_ = true;
  unsigned max_retries_ = 0;
  std::uint64_t retry_backoff_base_ms_ = 0;
  std::uint64_t backoff_seed_ = 0;
  std::uint64_t job_timeout_ms_ = 0;
  FailurePolicy default_policy_ = FailurePolicy::kFailFast;
  FaultPlan fault_plan_;
  SweepJournal* journal_ = nullptr;

  mutable std::mutex cache_mutex_;
  std::unordered_map<std::uint64_t, SimResultPtr> cache_;

  std::mutex sink_mutex_;
  ResultSink* sink_ = nullptr;

  /// Registry handles mirroring the atomic counters below into the global
  /// metrics registry (stable names; see OBSERVABILITY.md). Resolved once
  /// at construction so the hot paths never do name lookups.
  struct Instruments {
    obs::MetricsRegistry::Counter jobs_submitted;
    obs::MetricsRegistry::Counter jobs_executed;
    obs::MetricsRegistry::Counter cache_hits;
    obs::MetricsRegistry::Counter jobs_failed;
    obs::MetricsRegistry::Counter retries;
    obs::MetricsRegistry::Counter timeouts;
    obs::MetricsRegistry::Counter faults_injected;
    obs::MetricsRegistry::Counter journal_skips;
    obs::MetricsRegistry::Counter queue_enqueue_spins;
    obs::MetricsRegistry::Counter queue_pop_spins;
    obs::MetricsRegistry::Counter queue_parks;
    obs::MetricsRegistry::Counter workers_pinned;
    obs::MetricsRegistry::Counter workers_pin_failed;
    obs::MetricsRegistry::Histogram queue_wait_ms;
    obs::MetricsRegistry::Histogram run_ms;
    obs::MetricsRegistry::Histogram batch_size;
    obs::MetricsRegistry::Histogram queue_depth;
    obs::MetricsRegistry::Histogram worker_tasks;
  };
  Instruments obs_;

  std::atomic<std::uint64_t> simulations_executed_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> busy_nanos_{0};
  std::atomic<std::uint64_t> retries_performed_{0};
  std::atomic<std::uint64_t> jobs_failed_{0};
  std::atomic<std::uint64_t> journal_skips_{0};
  /// Executed-point cursor for the fault plan; advanced on the submitting
  /// thread in submission order so injection sites are pool-independent.
  std::atomic<std::uint64_t> fault_cursor_{0};

  // The lock-free job path: ring + spin-then-park. parked_ is the Dekker
  // flag between a producer's post-push check and a consumer's pre-park
  // re-check (both seq_cst), so a wake is never lost; the 2 ms park bound
  // is belt and braces, not the correctness mechanism.
  std::unique_ptr<MpmcRing<TaskItem>> ring_;
  std::atomic<bool> shutting_down_{false};
  std::atomic<unsigned> parked_{0};
  std::mutex park_mutex_;
  std::condition_variable park_cv_;
  std::unique_ptr<WorkerShard[]> worker_shards_;
  std::atomic<unsigned> workers_pinned_{0};
  std::atomic<unsigned> workers_pin_failed_{0};
  std::vector<std::thread> workers_;

  /// Per-backend eval-counter handles, resolved once per backend name so
  /// the merge path never does a registry name lookup per job.
  std::mutex backend_evals_mutex_;
  std::unordered_map<std::string, obs::MetricsRegistry::Counter>
      backend_evals_;

  struct WatchdogEntry {
    std::chrono::steady_clock::time_point deadline;
    std::shared_ptr<sim::RunGuard> guard;
  };
  std::mutex watchdog_mutex_;
  std::condition_variable watchdog_cv_;
  std::unordered_map<std::uint64_t, WatchdogEntry> watchdog_entries_;
  std::uint64_t watchdog_next_ticket_ = 0;
  bool watchdog_stop_ = false;
  std::thread watchdog_;
};

/// Builder for ExperimentEngine::Options (the validate-at-build idiom of
/// sim::MachineConfig::Builder). Every knob has a fluent setter; build()
/// validates the combination and throws util::ConfigError on any
/// inconsistency, so a bad engine configuration fails at the call site
/// that wrote it, not inside the constructor of a worker pool.
class ExperimentEngine::Options::Builder {
 public:
  Builder() = default;
  explicit Builder(Options base) : opts_(std::move(base)) {}

  /// 0 = auto ($LPM_THREADS, else hardware_concurrency); 1 = serial.
  Builder& threads(unsigned n) {
    opts_.threads = n;
    return *this;
  }
  Builder& cache(bool enabled) {
    opts_.cache_enabled = enabled;
    return *this;
  }
  Builder& sink(ResultSink* sink) {
    opts_.sink = sink;
    return *this;
  }
  Builder& max_retries(unsigned n) {
    opts_.max_retries = n;
    return *this;
  }
  Builder& retry_backoff_base_ms(std::uint64_t ms) {
    opts_.retry_backoff_base_ms = ms;
    return *this;
  }
  Builder& backoff_seed(std::uint64_t seed) {
    opts_.backoff_seed = seed;
    return *this;
  }
  Builder& job_timeout_ms(std::uint64_t ms) {
    opts_.job_timeout_ms = ms;
    return *this;
  }
  Builder& policy(FailurePolicy policy) {
    opts_.policy = policy;
    return *this;
  }
  Builder& fault_plan(FaultPlan plan) {
    opts_.fault_plan = std::move(plan);
    return *this;
  }
  Builder& journal(SweepJournal* journal) {
    opts_.journal = journal;
    return *this;
  }
  /// Ring capacity; build() requires a power of two >= 1.
  Builder& queue_capacity(std::size_t capacity) {
    opts_.queue_capacity = capacity;
    return *this;
  }
  Builder& affinity(AffinityPolicy policy) {
    opts_.affinity = policy;
    return *this;
  }

  /// Validates and returns the finished Options: threads <= 256, queue
  /// capacity a power of two >= 1, and an affinity request with an
  /// explicit thread count is checked against hardware_concurrency (more
  /// pinned workers than hardware threads is a configuration mistake, not
  /// a degradation case).
  [[nodiscard]] Options build() const;

 private:
  Options opts_;
};

inline ExperimentEngine::Options::Builder ExperimentEngine::Options::builder() {
  return Builder{};
}
inline ExperimentEngine::Options::Builder ExperimentEngine::Options::builder(
    Options base) {
  return Builder{std::move(base)};
}

}  // namespace lpm::exp
