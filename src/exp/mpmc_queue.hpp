// Bounded lock-free MPMC ring (lap-encoded ticket-sequenced cells).
//
// The experiment engine's job queue: submitters push TaskItems, workers pop
// them, and neither side ever takes a mutex. Tickets are claimed by one CAS
// on the head (push) or tail (pop) counter; each cell carries a sequence
// number that encodes which lap of the ring last touched it and whether it
// currently holds an item. For a ticket `pos`, `lap = pos / capacity` and:
//
//   seq == 2*lap       — cell free for the producer holding ticket pos
//   seq == 2*lap + 1   — cell holds the item for consumer ticket pos
//   seq == 2*lap + 2   — consumed; free for the *next* lap's producer
//   anything else      — another thread owns the cell this lap; retry on a
//                        fresh ticket or report full/empty
//
// This is the repo's variant of the classic Vyukov bounded MPMC queue with
// one deliberate change: Vyukov's encoding (push publishes pos+1, pop
// releases pos+capacity) collapses at capacity 1, where pos+1 equals
// pos+capacity and "holds an item" becomes indistinguishable from "free
// for the next ticket" — a second producer can overwrite an unconsumed
// cell. Doubling the lap in the sequence keeps the two states distinct at
// every capacity, so a capacity-1 ring degenerates cleanly into a
// rendezvous slot (every push waits for the matching pop) instead of
// losing items.
//
// Publication is a release store of the cell's sequence, matched by the
// acquire load on the other side — the element payload itself needs no
// atomics. Capacity must be a power of two >= 1 (the monotonically growing
// tickets are masked into cell indices and shifted into laps).
//
// try_push/try_pop never block and never spuriously fail: a false return
// means the ring was genuinely full (resp. empty) at some instant during
// the call. Progress is lock-free, not wait-free — a stalled thread that
// claimed a ticket delays only the threads that need that exact cell one
// lap later. Cells and the head/tail counters live on separate cache lines
// so producers and consumers do not false-share.
//
// The torture suite lives in tests/exp/mpmc_queue_test.cpp and runs under
// TSan in CI.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <memory>
#include <utility>

#include "util/error.hpp"

namespace lpm::exp {

template <typename T>
class MpmcRing {
 public:
  /// `capacity` must be a power of two >= 1 (throws util::ConfigError
  /// otherwise).
  explicit MpmcRing(std::size_t capacity)
      : mask_(capacity - 1),
        shift_(std::countr_zero(capacity)),
        cells_(new Cell[capacity]),
        capacity_(capacity) {
    util::require(capacity >= 1 && (capacity & (capacity - 1)) == 0,
                  "MpmcRing: capacity must be a power of two >= 1");
    // Every cell starts free for lap 0.
    for (std::size_t i = 0; i < capacity; ++i) {
      cells_[i].seq.store(0, std::memory_order_relaxed);
    }
  }

  MpmcRing(const MpmcRing&) = delete;
  MpmcRing& operator=(const MpmcRing&) = delete;

  /// Attempts to enqueue; false iff the ring was full. Never blocks.
  bool try_push(T item) {
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t free_mark = 2 * (pos >> shift_);
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(free_mark);
      if (dif == 0) {
        // Cell free for this ticket: claim it. CAS failure means another
        // producer took the ticket — retry with the updated position.
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.value = std::move(item);
          cell.seq.store(free_mark + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        // The cell still holds (or hasn't released) last lap's item: full.
        return false;
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Attempts to dequeue into `out`; false iff the ring was empty. Never
  /// blocks.
  bool try_pop(T& out) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t full_mark = 2 * (pos >> shift_) + 1;
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(full_mark);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          out = std::move(cell.value);
          // Release the cell for the producer one lap ahead.
          cell.seq.store(full_mark + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        // No published item at this ticket: the ring is empty.
        return false;
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Instantaneous occupancy estimate (racy by nature; used only for the
  /// exp.queue.depth metric, never for control flow).
  [[nodiscard]] std::size_t size_approx() const {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    return head >= tail ? head - tail : 0;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  const std::size_t mask_;
  const int shift_;  ///< log2(capacity): ticket -> lap
  std::unique_ptr<Cell[]> cells_;
  const std::size_t capacity_;
  alignas(64) std::atomic<std::size_t> head_{0};  ///< producer ticket
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< consumer ticket
};

}  // namespace lpm::exp
