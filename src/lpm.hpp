// lpm.hpp — the single public entry point of the library.
//
// Consumers (examples, notebooks, external tools) include this header and
// nothing else below src/: it re-exports every public subsystem header and
// adds the two high-level entry points most programs actually want:
//
//   * lpm::simulate(machine, spec)  — build the traces, run the machine
//     through the shared experiment engine (cached, parallel-safe), and
//     return the run together with its LPM measurement;
//   * lpm::run_lpm_walk(tunable)    — the Fig. 3 LPMR reduction loop over
//     any LpmTunable system.
//
// Subsystem headers remain includable directly for code that lives inside
// the repo (tests, benches), but examples demonstrate the facade only.
#pragma once

#include "camat/fig1.hpp"
#include "camat/metrics.hpp"
#include "camat/whatif.hpp"
#include "core/design_space.hpp"
#include "core/diagnosis.hpp"
#include "core/interval.hpp"
#include "core/lpm_algorithm.hpp"
#include "core/lpm_model.hpp"
#include "core/online_controller.hpp"
#include "exp/experiment_engine.hpp"
#include "exp/journal.hpp"
#include "exp/result_sink.hpp"
#include "sched/evaluate.hpp"
#include "sched/hsp.hpp"
#include "sched/profile.hpp"
#include "sched/scheduler.hpp"
#include "sim/machine_config.hpp"
#include "sim/system.hpp"
#include "trace/spec_like.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_file.hpp"
#include "util/config.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace lpm {

/// What to run on the machine: one workload per core (a single entry is
/// replicated across all cores), plus whether to also run the perfect-cache
/// CPIexe calibration every LPM computation needs.
struct TraceSpec {
  std::vector<trace::WorkloadProfile> workloads;
  /// Run sim::measure_cpi_exe per workload so the report carries
  /// AppMeasurements and LPMRs; disable for raw-throughput runs.
  bool calibrate = true;
  /// Free-form label carried into engine sinks (not part of the cache key).
  std::string tag;

  /// A synthetic SPEC CPU2006 analogue by name ("403.gcc", "429.mcf", ...).
  /// Throws util::ConfigError for an unknown name.
  [[nodiscard]] static TraceSpec spec(const std::string& name,
                                      std::uint64_t length = 100'000,
                                      std::uint64_t seed = 1);
  /// An explicit workload profile.
  [[nodiscard]] static TraceSpec profile(trace::WorkloadProfile workload);
  /// One profile per core.
  [[nodiscard]] static TraceSpec profiles(std::vector<trace::WorkloadProfile> w);

  /// The per-core workload list for a machine with `num_cores` cores
  /// (replicates a single entry; otherwise sizes must match).
  [[nodiscard]] std::vector<trace::WorkloadProfile> expand(
      std::uint32_t num_cores) const;
};

/// Everything simulate() produces: the raw run, the per-core calibrations,
/// and the derived LPM measurements.
struct SimulationReport {
  sim::SystemResult run;
  std::vector<sim::CpiExeResult> calib;    ///< per core; empty if !calibrate
  std::vector<core::AppMeasurement> apps;  ///< per core; empty if !calibrate
  core::LpmrSet lpmr;                      ///< of app(0); zeros if !calibrate
  double duration_ms = 0.0;  ///< wall clock of the producing execution

  /// The measurement of core `idx`; throws if calibration was disabled.
  [[nodiscard]] const core::AppMeasurement& app(std::size_t idx = 0) const;
};

/// Simulates `spec` on `machine` through the shared experiment engine:
/// repeated evaluations of the same point are served from its memo cache,
/// and concurrent callers share one worker pool. Deterministic — equal
/// inputs produce bit-identical reports.
[[nodiscard]] SimulationReport simulate(const sim::MachineConfig& machine,
                                        const TraceSpec& spec);

/// Runs the LPMR Reduction Algorithm (paper Fig. 3) over `system` until
/// convergence or exhaustion.
[[nodiscard]] core::LpmOutcome run_lpm_walk(
    core::LpmTunable& system, const core::LpmAlgorithmConfig& cfg = {});

}  // namespace lpm
