// lpm.hpp — the single public entry point of the library.
//
// Consumers (examples, notebooks, external tools) include this header and
// nothing else below src/: it re-exports every public subsystem header and
// adds the two high-level entry points most programs actually want:
//
//   * lpm::simulate(machine, spec)  — build the traces, run the machine
//     through the shared experiment engine (cached, parallel-safe), and
//     return the run together with its LPM measurement;
//   * lpm::estimate(machine, spec, backend) — the same point through any
//     model backend ("cycle", "rdh", "fa"), returning fidelity-tagged
//     LayerEstimates (microseconds per config for the analytic backends);
//   * lpm::run_lpm_walk(tunable)    — the Fig. 3 LPMR reduction loop over
//     any LpmTunable system;
//   * lpm::run_lpm_walk_screened(...) — the multi-fidelity walk: screen
//     the design space analytically, confirm cycle-accurately.
//
// Subsystem headers remain includable directly for code that lives inside
// the repo (tests, benches), but examples demonstrate the facade only.
#pragma once

#include "camat/fig1.hpp"
#include "camat/metrics.hpp"
#include "camat/whatif.hpp"
#include "core/design_space.hpp"
#include "core/diagnosis.hpp"
#include "core/interval.hpp"
#include "core/lpm_algorithm.hpp"
#include "core/lpm_model.hpp"
#include "core/online_controller.hpp"
#include "exp/experiment_engine.hpp"
#include "exp/journal.hpp"
#include "exp/result_sink.hpp"
#include "model/analytic.hpp"
#include "model/backend.hpp"
#include "model/trace_spec.hpp"
#include "sched/evaluate.hpp"
#include "sched/hsp.hpp"
#include "sched/profile.hpp"
#include "sched/scheduler.hpp"
#include "sim/machine_config.hpp"
#include "sim/system.hpp"
#include "trace/lpm2.hpp"
#include "trace/mmap_trace.hpp"
#include "trace/spec_like.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_file.hpp"
#include "util/config.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace lpm {

/// What to run on the machine (lives in src/model so every ModelBackend
/// shares one description; re-exported here under its historical name).
using TraceSpec = model::TraceSpec;

/// Worker-pinning policy of an engine's pool, re-exported so facade users
/// never spell an exp:: name (none | compact | spread; see
/// exp::AffinityPolicy for placement semantics).
using AffinityPolicy = exp::AffinityPolicy;

/// Concurrency knobs of an experiment engine, facade-shaped: the subset of
/// exp::ExperimentEngine::Options a consumer of lpm.hpp reasonably sets,
/// with the fault-tolerance internals left to their defaults. Build a real
/// engine from it with make_engine() and hand the result to
/// run_lpm_walk_screened() (or any API taking an engine pointer).
struct EngineOptions {
  /// Worker threads. 0 = auto ($LPM_THREADS, else hardware_concurrency);
  /// 1 = fully serial.
  unsigned threads = 0;
  /// Capacity of the lock-free job ring (power of two >= 1).
  std::size_t queue_capacity = 1024;
  /// CPU pinning for the pool's workers; silently degrades where the
  /// cpuset forbids pinning.
  AffinityPolicy affinity = AffinityPolicy::kNone;
  /// Memoizing result cache; disable only for benchmarking.
  bool cache_enabled = true;
};

/// Builds an engine from facade options, validating through
/// exp::ExperimentEngine::Options::builder() (throws util::ConfigError on
/// an inconsistent combination, e.g. a non-power-of-two ring or more
/// pinned workers than hardware threads).
[[nodiscard]] std::unique_ptr<exp::ExperimentEngine> make_engine(
    const EngineOptions& opts = {});

/// Everything simulate() produces: the raw run, the per-core calibrations,
/// and the derived LPM measurements.
struct SimulationReport {
  sim::SystemResult run;
  std::vector<sim::CpiExeResult> calib;    ///< per core; empty if !calibrate
  std::vector<core::AppMeasurement> apps;  ///< per core; empty if !calibrate
  core::LpmrSet lpmr;                      ///< of app(0); zeros if !calibrate
  double duration_ms = 0.0;  ///< wall clock of the producing execution

  /// The measurement of core `idx`; throws if calibration was disabled.
  [[nodiscard]] const core::AppMeasurement& app(std::size_t idx = 0) const;
};

/// Evaluates `spec` on `machine` through the named model backend ("cycle",
/// "rdh" or "fa"; see model::backend_names) and returns the fidelity-tagged
/// layer estimates. Same engine cache as simulate() — but analytic and
/// cycle evaluations of one point are distinct cache entries, never
/// aliases. Throws util::ConfigError for an unknown backend name.
[[nodiscard]] model::LayerEstimates estimate(
    const sim::MachineConfig& machine, const TraceSpec& spec,
    const std::string& backend = model::kRdhBackend);

/// Simulates `spec` on `machine` through the shared experiment engine:
/// repeated evaluations of the same point are served from its memo cache,
/// and concurrent callers share one worker pool. Deterministic — equal
/// inputs produce bit-identical reports.
[[nodiscard]] SimulationReport simulate(const sim::MachineConfig& machine,
                                        const TraceSpec& spec);

/// Runs the LPMR Reduction Algorithm (paper Fig. 3) over `system` until
/// convergence or exhaustion.
[[nodiscard]] core::LpmOutcome run_lpm_walk(
    core::LpmTunable& system, const core::LpmAlgorithmConfig& cfg = {});

/// What run_lpm_walk_screened produces. `final_config` comes from the
/// confirm (cycle-accurate) walk alone — identical to what a cycle-only
/// walk would pick — while the screening walk's trajectory warmed the
/// engine with batched simulations.
struct ScreenedWalkReport {
  core::LpmOutcome screen;   ///< the analytic screening walk
  core::LpmOutcome confirm;  ///< the authoritative cycle walk
  core::ArchKnobs final_config;
  std::size_t screen_configs = 0;   ///< configs the screen stage evaluated
  std::size_t confirm_configs = 0;  ///< configs the confirm stage evaluated
};

/// The multi-fidelity Fig. 3 walk over the Case Study I design space:
/// stage 1 walks with an analytic backend (microseconds per config),
/// stage 2 re-walks cycle-accurately with the screening trajectory as
/// batched prefetch hints and speculation disabled. Throws
/// util::ConfigError for an unknown screen backend.
[[nodiscard]] ScreenedWalkReport run_lpm_walk_screened(
    const sim::MachineConfig& base, const trace::WorkloadProfile& workload,
    const core::KnobLevels& levels, const core::ArchKnobs& start,
    const core::LpmAlgorithmConfig& cfg = {},
    const std::string& screen_backend = model::kRdhBackend,
    exp::ExperimentEngine* engine = nullptr);

}  // namespace lpm
