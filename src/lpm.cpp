#include "lpm.hpp"

namespace lpm {

TraceSpec TraceSpec::spec(const std::string& name, std::uint64_t length,
                          std::uint64_t seed) {
  for (const auto b : trace::all_spec_benchmarks()) {
    if (trace::spec_name(b) == name) {
      return profile(trace::spec_profile(b, length, seed));
    }
  }
  throw util::ConfigError("TraceSpec: unknown workload '" + name +
                          "'; try 403.gcc, 429.mcf, ...");
}

TraceSpec TraceSpec::profile(trace::WorkloadProfile workload) {
  TraceSpec spec;
  spec.workloads.push_back(std::move(workload));
  return spec;
}

TraceSpec TraceSpec::profiles(std::vector<trace::WorkloadProfile> w) {
  TraceSpec spec;
  spec.workloads = std::move(w);
  return spec;
}

std::vector<trace::WorkloadProfile> TraceSpec::expand(
    std::uint32_t num_cores) const {
  util::require(!workloads.empty(), "TraceSpec: no workload given");
  if (workloads.size() == 1 && num_cores > 1) {
    return std::vector<trace::WorkloadProfile>(num_cores, workloads.front());
  }
  util::require(workloads.size() == num_cores,
                "TraceSpec: workload count must be 1 or match num_cores");
  return workloads;
}

const core::AppMeasurement& SimulationReport::app(std::size_t idx) const {
  util::require(idx < apps.size(),
                "SimulationReport: no such app measurement (was the spec "
                "simulated with calibrate = false?)");
  return apps[idx];
}

SimulationReport simulate(const sim::MachineConfig& machine,
                          const TraceSpec& spec) {
  exp::SimJob job;
  job.machine = machine;
  job.workloads = spec.expand(machine.num_cores);
  job.calibrate = spec.calibrate;
  job.tag = spec.tag;

  const exp::SimResultPtr result = exp::ExperimentEngine::shared().run(job);

  SimulationReport report;
  report.run = result->run;
  report.calib = result->calib;
  report.duration_ms = result->duration_ms;
  if (spec.calibrate) {
    report.apps.reserve(job.workloads.size());
    for (std::size_t c = 0; c < job.workloads.size(); ++c) {
      report.apps.push_back(core::AppMeasurement::from_run(
          result->run, result->calib.at(c), c, job.workloads[c].name));
    }
    report.lpmr = core::compute_lpmrs(report.apps.front());
  }
  return report;
}

core::LpmOutcome run_lpm_walk(core::LpmTunable& system,
                              const core::LpmAlgorithmConfig& cfg) {
  return core::LpmAlgorithm(cfg).run(system);
}

}  // namespace lpm
