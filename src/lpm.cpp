#include "lpm.hpp"

namespace lpm {

const core::AppMeasurement& SimulationReport::app(std::size_t idx) const {
  util::require(idx < apps.size(),
                "SimulationReport: no such app measurement (was the spec "
                "simulated with calibrate = false?)");
  return apps[idx];
}

std::unique_ptr<exp::ExperimentEngine> make_engine(const EngineOptions& opts) {
  return std::make_unique<exp::ExperimentEngine>(
      exp::ExperimentEngine::Options::builder()
          .threads(opts.threads)
          .queue_capacity(opts.queue_capacity)
          .affinity(opts.affinity)
          .cache(opts.cache_enabled)
          .build());
}

SimulationReport simulate(const sim::MachineConfig& machine,
                          const TraceSpec& spec) {
  model::CycleSimBackend backend;
  model::LayerEstimates est = backend.evaluate(machine, spec);

  SimulationReport report;
  report.run = est.result->run;
  report.calib = est.result->calib;
  report.duration_ms = est.cost_ms;
  report.apps = std::move(est.apps);
  report.lpmr = est.lpmr;
  return report;
}

model::LayerEstimates estimate(const sim::MachineConfig& machine,
                               const TraceSpec& spec,
                               const std::string& backend) {
  return model::make_backend(backend)->evaluate(machine, spec);
}

core::LpmOutcome run_lpm_walk(core::LpmTunable& system,
                              const core::LpmAlgorithmConfig& cfg) {
  return core::LpmAlgorithm(cfg).run(system);
}

ScreenedWalkReport run_lpm_walk_screened(const sim::MachineConfig& base,
                                         const trace::WorkloadProfile& workload,
                                         const core::KnobLevels& levels,
                                         const core::ArchKnobs& start,
                                         const core::LpmAlgorithmConfig& cfg,
                                         const std::string& screen_backend,
                                         exp::ExperimentEngine* engine) {
  util::require(screen_backend != exp::kCycleBackend,
                "run_lpm_walk_screened: the screen backend must be analytic "
                "(rdh or fa); a cycle screen would just walk twice");

  core::DesignSpaceExplorer screen(base, workload, levels, start,
                                   cfg.delta_percent, engine, screen_backend);
  core::DesignSpaceExplorer confirm(base, workload, levels, start,
                                    cfg.delta_percent, engine,
                                    exp::kCycleBackend);

  const core::LpmAlgorithm algorithm(cfg);
  ScreenedWalkReport report;
  report.screen = algorithm.run(screen);
  // The screening trajectory becomes a one-shot concurrent warm-up batch
  // for the confirm walk; its own speculative frontier stays off so every
  // cycle simulation is either on the screened path or on the confirm
  // walk's own critical path.
  confirm.set_prefetch_hints(screen.visited());
  confirm.set_speculation(false);
  report.confirm = algorithm.run(confirm);
  report.final_config = confirm.current();
  report.screen_configs = screen.configs_evaluated();
  report.confirm_configs = confirm.configs_evaluated();
  return report;
}

}  // namespace lpm
